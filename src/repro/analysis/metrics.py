"""The paper's metric definitions (Table 1).

* **Load imbalance**: "the relative standard deviation around the average
  number of accesses per node" — reported as a percentage.
* **Interconnect load**: "the average of the percentage of the bandwidth
  used on the most loaded interconnect links during each second" —
  our epochs play the role of the seconds.
* **Imbalance level**: the classification of section 3.5.2 — "low" below
  85% first-touch imbalance, "high" above 130%, "moderate" in between.
"""

from __future__ import annotations

from repro.sim.results import RunResult

#: Class boundaries of section 3.5.2, on first-touch imbalance.
LOW_THRESHOLD = 0.85
HIGH_THRESHOLD = 1.30


def classify_imbalance(first_touch_imbalance: float) -> str:
    """The paper's low / moderate / high classification."""
    if first_touch_imbalance < LOW_THRESHOLD:
        return "low"
    if first_touch_imbalance > HIGH_THRESHOLD:
        return "high"
    return "moderate"


def imbalance_percent(result: RunResult) -> float:
    """Time-averaged load imbalance of a run, in percent."""
    return result.mean_imbalance * 100.0


def interconnect_percent(result: RunResult) -> float:
    """Time-averaged most-loaded-link utilisation of a run, in percent."""
    return result.mean_max_link_rho * 100.0
