"""Plain-text bar charts, so the experiments can *show* the figures.

The paper's figures are per-application bar charts (overhead or
improvement). ``render_bars`` draws a horizontal ASCII version: one row
per label, negative values growing left from the axis, positive right —
enough to eyeball the same shapes the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_bars(
    values: Dict[str, float],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Render a label -> value mapping as horizontal bars.

    Args:
        values: bar per entry, in input order.
        title: optional heading.
        width: character budget for the longest bar (per side).
        unit: suffix printed after each value.
        scale: multiplier applied before printing (fractions -> percent).
    """
    if not values:
        return title or ""
    label_width = max(len(label) for label in values)
    magnitudes = [abs(v) for v in values.values()]
    peak = max(magnitudes) or 1.0
    has_negative = any(v < 0 for v in values.values())
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in values.items():
        length = int(round(abs(value) / peak * width))
        bar = "#" * length
        amount = f"{value * scale:+.0f}{unit}"
        if has_negative:
            left = bar.rjust(width) if value < 0 else " " * width
            right = bar if value >= 0 else ""
            lines.append(
                f"{label.ljust(label_width)} {left}|{right.ljust(width)} {amount}"
            )
        else:
            lines.append(
                f"{label.ljust(label_width)} |{bar.ljust(width)} {amount}"
            )
    return "\n".join(lines)


def render_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    title: Optional[str] = None,
    width: int = 30,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Render label -> {series -> value} as grouped bars.

    Used for the multi-series figures (Figure 2's four policies, Figure
    6's three configurations).
    """
    if not groups:
        return title or ""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = max(len(label) for label in groups)
    series_names = list(next(iter(groups.values())))
    series_width = max(len(s) for s in series_names)
    peak = max(
        (abs(v) for per in groups.values() for v in per.values()), default=1.0
    ) or 1.0
    for label, per_series in groups.items():
        lines.append(label)
        for series in series_names:
            value = per_series.get(series, 0.0)
            length = int(round(abs(value) / peak * width))
            bar = ("#" if value >= 0 else "-") * length
            lines.append(
                f"  {series.ljust(series_width)} |{bar.ljust(width)} "
                f"{value * scale:+.0f}{unit}"
            )
    return "\n".join(lines)
