"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_percent(value: float, signed: bool = False) -> str:
    """Render a fraction as a percentage string."""
    pct = value * 100.0
    if signed:
        return f"{pct:+.0f}%"
    return f"{pct:.0f}%"


def format_factor(value: float) -> str:
    """Render a completion-time ratio ("x2.3")."""
    return f"x{value:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
