"""Metric definitions and report formatting."""

from repro.analysis.metrics import (
    classify_imbalance,
    imbalance_percent,
    interconnect_percent,
)
from repro.analysis.tables import format_table, format_percent, format_factor

__all__ = [
    "classify_imbalance",
    "imbalance_percent",
    "interconnect_percent",
    "format_table",
    "format_percent",
    "format_factor",
]
