"""Metric cells and the registry that collects them.

The design splits *counting* from *collection* so instrumentation can be
left permanently in the hot paths without changing any simulated number:

* a **cell** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) is a
  tiny mutable value holder. Components own their cells and mutate them
  exactly like the plain attributes they replaced — ``cell.value += x``
  is the same int/float arithmetic, so porting an ad-hoc counter onto a
  cell is bit-identical;
* a :class:`MetricsRegistry` is a *roster* of cells. An enabled registry
  (one per :func:`repro.obs.session`) retains every cell created while it
  is active, in creation order, and :meth:`MetricsRegistry.snapshot`
  reads them all out. The disabled registry — the process default — hands
  out the same cells but retains nothing: that is the zero-overhead no-op
  recorder (nothing is ever scanned, exported, or kept alive).

Because the roster is a list, two cells may share a name (every fault
handler creates ``faults.hypervisor``); snapshots keep one entry per
cell, in creation order — which is deterministic under the serial
execution the trace mode enforces. Aggregation across same-named cells
is the consumer's job (``python -m repro.obs summary`` sums them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

Scalar = Union[int, float]


class _Cell:
    """Common shape of one metric cell."""

    kind = "cell"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Dict[str, Scalar]):
        self.name = name
        self.labels = labels

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self._value_json(),
        }

    def _value_json(self) -> object:
        raise NotImplementedError


class Counter(_Cell):
    """Monotonic-by-convention accumulator (int or float)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, Scalar], value: Scalar = 0):
        super().__init__(name, labels)
        self.value: Scalar = value

    def inc(self, amount: Scalar = 1) -> None:
        self.value += amount

    def _value_json(self) -> object:
        return self.value


class Gauge(_Cell):
    """Point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, Scalar], value: Scalar = 0):
        super().__init__(name, labels)
        self.value: Scalar = value

    def set(self, value: Scalar) -> None:
        self.value = value

    def _value_json(self) -> object:
        return self.value


class Histogram(_Cell):
    """Streaming count/total/min/max summary of observed samples.

    Deliberately bucket-free: the trace consumers only need the moments,
    and fixed buckets would bake policy into the instrumentation.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name: str, labels: Dict[str, Scalar]):
        super().__init__(name, labels)
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Scalar) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _value_json(self) -> object:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Roster of metric cells (see the module docstring).

    Args:
        enabled: an enabled registry retains created cells for
            :meth:`snapshot`; a disabled one creates the same cells but
            forgets them immediately (the no-op recorder).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cells: List[_Cell] = []

    # ------------------------------------------------------------------
    # Cell construction

    def counter(self, name: str, value: Scalar = 0, **labels: Scalar) -> Counter:
        return self._retain(Counter(name, labels, value))

    def gauge(self, name: str, value: Scalar = 0, **labels: Scalar) -> Gauge:
        return self._retain(Gauge(name, labels, value))

    def histogram(self, name: str, **labels: Scalar) -> Histogram:
        return self._retain(Histogram(name, labels))

    def _retain(self, cell):
        if self.enabled:
            self._cells.append(cell)
        return cell

    # ------------------------------------------------------------------
    # Collection

    def __len__(self) -> int:
        return len(self._cells)

    def snapshot(self) -> List[Dict[str, object]]:
        """All retained cells, in creation order."""
        return [cell.snapshot() for cell in self._cells]
