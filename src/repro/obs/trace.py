"""The structured trace layer: sim-time-stamped events and spans.

Determinism contract (the observability half of RPR002): every timestamp
is *simulated* time — the engine drives :meth:`Tracer.set_time` from its
epoch clock — and event payloads carry only values derived from the run
itself. Two executions of the same ``RunRequest`` therefore produce
byte-identical trace files; the tier-1 suite asserts exactly that.

A trace file is one JSON object::

    {
      "format": "repro-trace",
      "version": 1,
      "engine_version": "<repro.sim.engine.ENGINE_VERSION>",
      "events":  [{"seq", "ts", "name", "cat", "args"[, "dur"]}, ...],
      "metrics": [{"name", "kind", "labels", "value"}, ...]
    }

``ts``/``dur`` are simulated seconds; ``seq`` is the emission index (the
total order, since many events share one epoch timestamp). The file is
written with sorted keys and no whitespace so byte identity falls out of
value identity. :func:`to_chrome` converts the native format to the
Chrome trace-event JSON (``chrome://tracing`` / Perfetto), mapping each
category to its own named thread row.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Event payload values must be JSON scalars so traces stay portable and
#: byte-stable (numpy scalars would not even serialize).
_SCALAR_TYPES = (str, int, float, bool, type(None))


class Tracer:
    """Collects events against an externally driven simulated clock."""

    enabled = True
    __slots__ = ("events", "sim_time", "_seq")

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.sim_time = 0.0
        self._seq = 0

    def set_time(self, seconds: float) -> None:
        """Advance the simulated clock (the engine calls this per epoch)."""
        self.sim_time = float(seconds)

    def instant(self, name: str, cat: str = "sim", **args: object) -> None:
        """Record a point event at the current simulated time."""
        self._append(name, cat, None, args)

    def span(
        self, name: str, duration_seconds: float, cat: str = "sim", **args: object
    ) -> None:
        """Record an interval starting at the current simulated time."""
        self._append(name, cat, float(duration_seconds), args)

    def _append(
        self,
        name: str,
        cat: str,
        dur: Optional[float],
        args: Dict[str, object],
    ) -> None:
        event: Dict[str, object] = {
            "seq": self._seq,
            "ts": self.sim_time,
            "name": name,
            "cat": cat,
            "args": args,
        }
        if dur is not None:
            event["dur"] = dur
        self._seq += 1
        self.events.append(event)


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Hot paths check :attr:`enabled` before building event payloads, so
    with no session active tracing costs one attribute read.
    """

    enabled = False
    events: tuple = ()

    def set_time(self, seconds: float) -> None:
        pass

    def instant(self, name: str, cat: str = "sim", **args: object) -> None:
        pass

    def span(
        self, name: str, duration_seconds: float, cat: str = "sim", **args: object
    ) -> None:
        pass


NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Payload assembly and serialization


def build_payload(tracer: Tracer, registry: MetricsRegistry) -> Dict[str, object]:
    """The trace-file dict for one session (events + metrics snapshot)."""
    # Imported lazily: the engine imports repro.obs for instrumentation,
    # so a top-level import here would be circular.
    from repro.sim.engine import ENGINE_VERSION

    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "engine_version": ENGINE_VERSION,
        "events": list(tracer.events),
        "metrics": registry.snapshot(),
    }


def dump_payload(payload: Dict[str, object]) -> str:
    """Canonical text form: sorted keys, no whitespace, one newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_trace(path: Union[str, Path], payload: Dict[str, object]) -> Path:
    """Write ``payload`` canonically to ``path``; returns the path."""
    out = Path(path)
    out.write_text(dump_payload(payload))
    return out


# ----------------------------------------------------------------------
# Schema validation (hand-rolled: no dependency beyond the stdlib)


def validate_payload(payload: object) -> List[str]:
    """Problems that make ``payload`` an invalid trace (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    if payload.get("format") != TRACE_FORMAT:
        problems.append(f"format is {payload.get('format')!r}, expected {TRACE_FORMAT!r}")
    if payload.get("version") != TRACE_VERSION:
        problems.append(f"version is {payload.get('version')!r}, expected {TRACE_VERSION}")
    if not isinstance(payload.get("engine_version"), str):
        problems.append("engine_version is not a string")
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("events is not a list")
        events = []
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        problems.append("metrics is not a list")
        metrics = []
    prev_seq = -1
    for i, event in enumerate(events):
        where = f"events[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        unknown = set(event) - {"seq", "ts", "name", "cat", "args", "dur"}
        if unknown:
            problems.append(f"{where} has unknown keys {sorted(unknown)}")
        seq = event.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            problems.append(f"{where}.seq is not an integer")
        elif seq <= prev_seq:
            problems.append(f"{where}.seq {seq} is not strictly increasing")
        else:
            prev_seq = seq
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}.ts is not a non-negative number")
        if "dur" in event:
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}.dur is not a non-negative number")
        for key in ("name", "cat"):
            value = event.get(key)
            if not isinstance(value, str) or not value:
                problems.append(f"{where}.{key} is not a non-empty string")
        args = event.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}.args is not an object")
        else:
            for key, value in args.items():
                if not isinstance(value, _SCALAR_TYPES):
                    problems.append(
                        f"{where}.args[{key!r}] is not a JSON scalar "
                        f"({type(value).__name__})"
                    )
    for i, metric in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(metric, dict):
            problems.append(f"{where} is not an object")
            continue
        if set(metric) != {"name", "kind", "labels", "value"}:
            problems.append(f"{where} keys are {sorted(metric)}")
            continue
        if not isinstance(metric["name"], str) or not metric["name"]:
            problems.append(f"{where}.name is not a non-empty string")
        kind = metric["kind"]
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{where}.kind {kind!r} is unknown")
        if not isinstance(metric["labels"], dict):
            problems.append(f"{where}.labels is not an object")
        value = metric["value"]
        if kind == "histogram":
            if not isinstance(value, dict) or set(value) != {
                "count",
                "total",
                "min",
                "max",
            }:
                problems.append(f"{where}.value is not a histogram summary")
        elif kind in ("counter", "gauge"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}.value is not a number")
    return problems


# ----------------------------------------------------------------------
# Chrome trace-event export


def to_chrome(payload: Dict[str, object]) -> Dict[str, object]:
    """Convert a native trace payload to Chrome trace-event JSON.

    Simulated seconds become microseconds (the chrome://tracing unit);
    spans map to complete events (``ph: "X"``), instants to instant
    events (``ph: "i"``); each category gets its own named thread row so
    engine epochs, hypervisor activity and store traffic stack visually.
    """
    tid_of_cat: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []
    for event in payload.get("events", []):  # type: ignore[union-attr]
        cat = event["cat"]
        tid = tid_of_cat.setdefault(cat, len(tid_of_cat))
        entry: Dict[str, object] = {
            "name": event["name"],
            "cat": cat,
            "pid": 0,
            "tid": tid,
            "ts": float(event["ts"]) * 1e6,
            "args": event["args"],
        }
        if "dur" in event:
            entry["ph"] = "X"
            entry["dur"] = float(event["dur"]) * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    meta = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": cat},
        }
        for cat, tid in tid_of_cat.items()
    ]
    return {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": payload.get("format"),
            "engine_version": payload.get("engine_version"),
        },
    }
