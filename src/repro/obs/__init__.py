"""Unified observability: the metrics registry and the trace layer.

One *session* owns one :class:`~repro.obs.metrics.MetricsRegistry` and
one :class:`~repro.obs.trace.Tracer`; instrumented components reach the
active session through the module-level accessors::

    from repro import obs

    cell = obs.registry().counter("faults.hypervisor")   # at construction
    tr = obs.tracer()                                    # at event time
    if tr.enabled:
        tr.instant("fault.storm", cat="hypervisor", pages=n)

With no session active (the default) :func:`registry` hands back the
disabled registry — cells still count, nothing is retained — and
:func:`tracer` hands back the shared no-op tracer, so instrumentation
stays in the hot paths permanently without changing any simulated
number. Activate collection with::

    with obs.session() as sess:
        results = execute_request(request)
    sess.write_trace("trace.json")

Sessions are process-local by design: worker processes of a parallel
runner would each collect into their own (discarded) session, which is
why the experiment CLI forces ``--jobs 1`` while tracing.

Determinism: timestamps are simulated seconds driven by the engine
(never the wall clock — RPR002 applies to this package like any other),
event payloads are plain JSON scalars, and trace files are written in a
canonical form, so identical ``RunRequest`` executions yield
byte-identical traces.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.errors import ObsError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    NullTracer,
    Tracer,
    build_payload,
    dump_payload,
    to_chrome,
    validate_payload,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ObsSession",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "active",
    "build_payload",
    "dump_payload",
    "enabled",
    "registry",
    "session",
    "to_chrome",
    "tracer",
    "validate_payload",
    "write_trace",
]


class ObsSession:
    """One collection window: a live registry plus a tracer."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry(enabled=True)
        self.tracer = Tracer()

    def payload(self) -> Dict[str, object]:
        """The trace-file dict (events + metrics snapshot)."""
        return build_payload(self.tracer, self.registry)

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write this session's trace canonically to ``path``."""
        return write_trace(path, self.payload())


class _SessionSlot:
    """Holds the process-local active session.

    An attribute on one holder object (the ``core.batch`` idiom) rather
    than a rebound module global, so the dataflow lint can see the write
    is confined to one owned object.
    """

    __slots__ = ("session",)

    def __init__(self) -> None:
        self.session: Optional[ObsSession] = None


_SLOT = _SessionSlot()
_NULL_REGISTRY = MetricsRegistry(enabled=False)


def active() -> Optional[ObsSession]:
    """The active session, or None."""
    return _SLOT.session


def enabled() -> bool:
    """Whether an observability session is collecting."""
    return _SLOT.session is not None


def registry() -> MetricsRegistry:
    """The active session's registry, or the disabled default."""
    sess = _SLOT.session
    return sess.registry if sess is not None else _NULL_REGISTRY


def tracer() -> Union[Tracer, NullTracer]:
    """The active session's tracer, or the shared no-op tracer."""
    sess = _SLOT.session
    return sess.tracer if sess is not None else NULL_TRACER


@contextmanager
def session() -> Iterator[ObsSession]:
    """Activate a fresh session for the duration of the block.

    The session object survives the block, so callers write the trace
    after deactivation (once every component has finished recording).
    """
    if _SLOT.session is not None:
        raise ObsError("an observability session is already active")
    sess = ObsSession()
    _SLOT.session = sess
    try:
        yield sess
    finally:
        _SLOT.session = None
