"""Module entry point: ``python -m repro.obs <summary|validate|export>``."""

from repro.obs.cli import main

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
