"""``python -m repro.obs`` — inspect, validate, and export trace files.

Subcommands::

    python -m repro.obs summary trace.json
    python -m repro.obs validate trace.json
    python -m repro.obs export --format chrome trace.json -o chrome.json

``summary`` prints per-(category, name) event counts and per-name metric
aggregates; ``validate`` checks the payload against the trace schema and
exits non-zero on problems; ``export`` converts the native format to
Chrome trace-event JSON (load the result in ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import to_chrome, validate_payload


def _load(path: str) -> Tuple[Optional[dict], Optional[str]]:
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return None, f"trace file {path} does not exist"
    except (OSError, json.JSONDecodeError) as exc:
        return None, f"cannot read trace file {path}: {exc}"
    if not isinstance(payload, dict):
        return None, f"trace file {path} is not a JSON object"
    return payload, None


def _summary_command(args: argparse.Namespace) -> int:
    payload, error = _load(args.trace)
    if payload is None:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"trace {args.trace}: format {payload.get('format')} "
        f"v{payload.get('version')}, engine version {payload.get('engine_version')}"
    )
    events = payload.get("events") or []
    groups: Dict[Tuple[str, str], Dict[str, float]] = {}
    for event in events:
        key = (str(event.get("cat")), str(event.get("name")))
        group = groups.setdefault(
            key, {"count": 0, "spans": 0, "first": float("inf"), "last": 0.0}
        )
        group["count"] += 1
        if "dur" in event:
            group["spans"] += 1
        ts = float(event.get("ts", 0.0))
        group["first"] = min(group["first"], ts)
        group["last"] = max(group["last"], ts)
    print(f"events: {len(events)}")
    for (cat, name), group in sorted(groups.items()):
        kind = "spans" if group["spans"] else "events"
        print(
            f"  {cat + '/' + name:32s} {int(group['count']):8d} {kind:6s} "
            f"ts {group['first']:.6f}..{group['last']:.6f}s"
        )
    metrics = payload.get("metrics") or []
    by_name: Dict[str, Dict[str, float]] = {}
    for metric in metrics:
        name = str(metric.get("name"))
        agg = by_name.setdefault(name, {"cells": 0, "total": 0.0, "samples": 0})
        agg["cells"] += 1
        value = metric.get("value")
        if isinstance(value, dict):  # histogram summary
            agg["total"] += float(value.get("total") or 0.0)
            agg["samples"] += int(value.get("count") or 0)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            agg["total"] += float(value)
    print(f"metrics: {len(metrics)} cells, {len(by_name)} names")
    for name, agg in sorted(by_name.items()):
        samples = f", {int(agg['samples'])} samples" if agg["samples"] else ""
        print(
            f"  {name:32s} {int(agg['cells']):4d} cells  "
            f"total {agg['total']:g}{samples}"
        )
    return 0


def _validate_command(args: argparse.Namespace) -> int:
    payload, error = _load(args.trace)
    if payload is None:
        print(f"error: {error}", file=sys.stderr)
        return 1
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = len(payload.get("events") or [])
    metrics = len(payload.get("metrics") or [])
    print(f"{args.trace}: valid trace ({events} events, {metrics} metric cells)")
    return 0


def _export_command(args: argparse.Namespace) -> int:
    payload, error = _load(args.trace)
    if payload is None:
        print(f"error: {error}", file=sys.stderr)
        return 1
    problems = validate_payload(payload)
    if problems:
        print(f"error: {args.trace} is not a valid trace:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    converted = to_chrome(payload)
    out_path = args.output or str(Path(args.trace).with_suffix(".chrome.json"))
    Path(out_path).write_text(json.dumps(converted, sort_keys=True) + "\n")
    print(
        f"wrote {out_path} ({len(converted['traceEvents'])} trace events); "
        f"load it in chrome://tracing or ui.perfetto.dev"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, validate, and export repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="aggregate events and metrics")
    summary.add_argument("trace", help="trace file written by --trace")
    summary.set_defaults(func=_summary_command)

    validate = sub.add_parser("validate", help="check a trace against the schema")
    validate.add_argument("trace", help="trace file written by --trace")
    validate.set_defaults(func=_validate_command)

    export = sub.add_parser("export", help="convert to another trace format")
    export.add_argument("trace", help="trace file written by --trace")
    export.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="output format (default: chrome trace-event JSON)",
    )
    export.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <trace>.chrome.json)",
    )
    export.set_defaults(func=_export_command)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    return args.func(args)
