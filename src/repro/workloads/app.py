"""The application model: measured characteristics plus derived segments.

An :class:`AppSpec` carries exactly what the paper measures about each
application (Tables 1 and 2) plus a few modelling knobs, and derives the
memory-segment layout the simulation engine executes:

* a **shared** segment, first-touched by the master thread and accessed by
  every thread — its access weight is the calibrated ``master_share``, and
  one page of it may be disproportionately hot (``hot_weight``);
* one **private** segment per thread, first-touched and accessed by its
  owner, optionally churned (freed/reallocated continuously, the
  Streamflow allocator behaviour of the Mosbench applications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import SimConfig
from repro.errors import WorkloadError
from repro.workloads.patterns import (
    SegmentSpec,
    hot_weight_for_ratio,
    master_share_for_imbalance,
)


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application.

    Measured inputs (from the paper):

    Attributes:
        name: application name as in the paper.
        suite: benchmark suite ("parsec", "npb", "mosbench", "xstream",
            "ycsb").
        footprint_mb: memory footprint (Table 2).
        disk_mb_s: hard-drive read rate (Table 2).
        ctx_switches_k_s: intentional context switches, thousands per
            second per core (Table 2).
        ft_imbalance: load imbalance under first-touch in Linux (Table 1,
            as a fraction: 1.35 = 135%).
        r4k_imbalance: load imbalance under round-4K (Table 1).
        ft_interconnect: interconnect load under first-touch (Table 1).
        r4k_interconnect: interconnect load under round-4K (Table 1).
        imbalance_class: "low" / "moderate" / "high" (Table 1).
        best_linux: the best Linux policy (Table 4), for reference.
        best_xen: the best Xen+ policy (Table 4), for reference.

    Modelling knobs:

    Attributes:
        churn_per_thread_s: page releases per thread per second (the
            Streamflow mmap/munmap churn; wrmem: one per 15 us).
        burst_noise: probability per epoch of a transient remote access
            burst on private data — the behaviour that misleads Carrefour
            on the "low" applications (section 3.5.2).
        shared_write_fraction: write ratio of the shared segment.
        io_block_kib: read granularity used against the disk model.
        baseline_seconds: nominal uncontended runtime (sets total work).
    """

    name: str
    suite: str
    footprint_mb: float
    disk_mb_s: float
    ctx_switches_k_s: float
    ft_imbalance: float
    r4k_imbalance: float
    ft_interconnect: float
    r4k_interconnect: float
    imbalance_class: str
    best_linux: str = ""
    best_xen: str = ""
    churn_per_thread_s: float = 0.0
    burst_noise: float = 0.0
    shared_write_fraction: float = 0.2
    io_block_kib: int = 64
    baseline_seconds: float = 40.0

    def __post_init__(self):
        if self.footprint_mb <= 0:
            raise WorkloadError(f"{self.name}: footprint must be positive")
        if self.imbalance_class not in ("low", "moderate", "high"):
            raise WorkloadError(f"{self.name}: bad imbalance class")

    # ------------------------------------------------------------------
    # Derived parameters

    @property
    def master_share(self) -> float:
        """Fraction of accesses hitting master-initialised memory."""
        return master_share_for_imbalance(self.ft_imbalance)

    @property
    def hot_weight(self) -> float:
        """Fraction of shared accesses hitting the single hot page."""
        return hot_weight_for_ratio(self.r4k_imbalance, self.ft_imbalance)

    @property
    def footprint_bytes(self) -> float:
        return self.footprint_mb * (1 << 20)

    def segments(self) -> List[SegmentSpec]:
        """The abstract segment layout (resolved by :func:`build_segments`)."""
        share = self.master_share
        specs: List[SegmentSpec] = []
        # The master-allocated hot region is denser than its access share:
        # cap its size at half the footprint (hot data structures are
        # compact and contiguous — which is also why round-1G's coarse
        # chunks tend to land them on few nodes). Keep both segments
        # non-empty so every thread owns pages.
        shared_fraction = min(max(share, 0.02), 0.5)
        specs.append(
            SegmentSpec(
                name="shared",
                fraction=shared_fraction,
                init="master",
                access="all",
                weight=share,
                hot_weight=self.hot_weight,
                write_fraction=self.shared_write_fraction,
            )
        )
        specs.append(
            SegmentSpec(
                name="private",
                fraction=1.0 - shared_fraction,
                init="owner",
                access="owner",
                weight=1.0 - share,
                churn=self.churn_per_thread_s > 0,
            )
        )
        return specs


@dataclass
class SegmentDef:
    """A segment resolved to concrete page counts for one run.

    Attributes:
        spec: the abstract segment.
        num_pages: simulated pages (for per-thread segments, pages per
            thread owner).
        owner_tid: owning thread for "owner" segments (None = shared).
    """

    spec: SegmentSpec
    num_pages: int
    owner_tid: Optional[int] = None

    @property
    def name(self) -> str:
        if self.owner_tid is None:
            return self.spec.name
        return f"{self.spec.name}[{self.owner_tid}]"


def build_segments(
    app: AppSpec, num_threads: int, config: SimConfig
) -> List[SegmentDef]:
    """Resolve an application's segments for a run with ``num_threads``.

    Owner segments are split into one :class:`SegmentDef` per thread.
    Every segment gets at least one page.
    """
    if num_threads < 1:
        raise WorkloadError("need at least one thread")
    total_pages = config.pages_for_bytes(app.footprint_bytes)
    defs: List[SegmentDef] = []
    for spec in app.segments():
        pages = max(1, int(round(total_pages * spec.fraction)))
        if spec.access == "owner":
            per_thread = max(1, pages // num_threads)
            for tid in range(num_threads):
                defs.append(SegmentDef(spec=spec, num_pages=per_thread, owner_tid=tid))
        else:
            defs.append(SegmentDef(spec=spec, num_pages=pages))
    return defs
