"""Models of the paper's 29 applications (Parsec, NPB, Mosbench, X-Stream, YCSB)."""

from repro.workloads.patterns import (
    SegmentSpec,
    master_share_for_imbalance,
    imbalance_for_master_share,
    hot_weight_for_ratio,
)
from repro.workloads.app import AppSpec, SegmentDef, build_segments
from repro.workloads.suite import APPLICATIONS, APP_NAMES, get_app

__all__ = [
    "SegmentSpec",
    "master_share_for_imbalance",
    "imbalance_for_master_share",
    "hot_weight_for_ratio",
    "AppSpec",
    "SegmentDef",
    "build_segments",
    "APPLICATIONS",
    "APP_NAMES",
    "get_app",
]
