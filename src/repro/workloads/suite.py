"""The 29 applications of the paper's evaluation.

All measured numbers are transcribed from the paper:

* Table 1 — load imbalance and interconnect load under first-touch and
  round-4K (native Linux, 48 threads), plus the imbalance class;
* Table 2 — hard-drive rate (MB/s), intentional context switches
  (thousands per second per core) and memory footprint (MB);
* Table 4 — the best NUMA policy per application in Linux and in Xen+
  (kept as reference strings for the experiment reports).

Modelling knobs not in the paper's tables:

* ``churn_per_thread_s`` — the Mosbench applications use the Streamflow
  allocator, which continuously calls mmap/munmap; the paper quantifies
  wrmem at one page release every 15 us (section 4.2.3). The other
  Streamflow applications get qualitatively scaled rates.
* ``burst_noise`` — "low"-class applications occasionally hit private
  data from remote nodes for a short time, which tricks Carrefour into
  counter-productive migrations (section 3.5.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.app import AppSpec

#: One release every 15 microseconds (section 4.2.3).
WRMEM_CHURN = 1.0 / 15e-6


def _app(
    name,
    suite,
    footprint_mb,
    disk_mb_s,
    ctx_k_s,
    ft_imb,
    r4k_imb,
    ft_icl,
    r4k_icl,
    klass,
    best_linux,
    best_xen,
    **kwargs,
) -> AppSpec:
    return AppSpec(
        name=name,
        suite=suite,
        footprint_mb=footprint_mb,
        disk_mb_s=disk_mb_s,
        ctx_switches_k_s=ctx_k_s,
        ft_imbalance=ft_imb / 100.0,
        r4k_imbalance=r4k_imb / 100.0,
        ft_interconnect=ft_icl / 100.0,
        r4k_interconnect=r4k_icl / 100.0,
        imbalance_class=klass,
        best_linux=best_linux,
        best_xen=best_xen,
        **kwargs,
    )


#: Transient remote bursts of the "low" applications (model knob).
_LOW_BURST = 0.15

APPLICATIONS: List[AppSpec] = [
    # ---------------------------------------------------------- Parsec 2.1
    _app("bodytrack", "parsec", 7, 0, 17.7, 135, 48, 9, 8, "high",
         "Round-4K / Carrefour", "Round-4K / Carrefour"),
    _app("facesim", "parsec", 328, 0, 11.7, 253, 27, 39, 16, "high",
         "Round-4K", "Round-4K"),
    _app("fluidanimate", "parsec", 223, 0, 4.2, 65, 16, 18, 16, "low",
         "Round-4K / Carrefour", "Round-4K / Carrefour",
         burst_noise=_LOW_BURST),
    _app("streamcluster", "parsec", 106, 0, 29.5, 219, 45, 31, 18, "high",
         "Round-4K", "Round-4K"),
    _app("swaptions", "parsec", 4, 0, 0.0, 175, 180, 4, 5, "high",
         "Round-4K", "Round-4K"),
    _app("x264", "parsec", 1129, 0, 0.6, 84, 28, 17, 13, "low",
         "First-Touch", "Round-4K", burst_noise=_LOW_BURST),
    # ---------------------------------------------------------- NPB 3.3
    _app("bt.C", "npb", 698, 0, 1.2, 89, 8, 51, 35, "moderate",
         "First-Touch / Carrefour", "First-Touch / Carrefour"),
    _app("cg.C", "npb", 889, 0, 5.9, 7, 5, 11, 46, "low",
         "First-Touch", "First-Touch", burst_noise=_LOW_BURST),
    _app("dc.B", "npb", 39273, 175, 0.1, 45, 19, 10, 22, "low",
         "First-Touch", "Round-1G", burst_noise=_LOW_BURST),
    _app("ep.D", "npb", 49, 0, 0.0, 263, 116, 48, 9, "high",
         "Round-4K", "Round-4K"),
    _app("ft.C", "npb", 5156, 0, 0.3, 60, 19, 17, 46, "low",
         "Round-4K", "Round-4K", burst_noise=_LOW_BURST),
    _app("lu.C", "npb", 600, 0, 1.5, 47, 30, 18, 41, "low",
         "Round-4K", "First-Touch", burst_noise=_LOW_BURST),
    _app("mg.D", "npb", 27095, 0, 1.5, 8, 1, 12, 51, "low",
         "First-Touch", "First-Touch", burst_noise=_LOW_BURST),
    _app("sp.C", "npb", 869, 0, 2.0, 113, 4, 43, 58, "moderate",
         "Round-4K / Carrefour", "Round-4K / Carrefour"),
    _app("ua.C", "npb", 483, 0, 37.4, 5, 7, 14, 37, "low",
         "First-Touch", "First-Touch", burst_noise=_LOW_BURST),
    # ---------------------------------------------------------- Mosbench
    _app("wc", "mosbench", 16682, 0, 3.9, 101, 41, 18, 17, "moderate",
         "First-Touch / Carrefour", "Round-4K",
         churn_per_thread_s=20000.0),
    _app("wr", "mosbench", 19016, 1, 5.2, 110, 57, 18, 18, "moderate",
         "First-Touch", "Round-4K", churn_per_thread_s=20000.0),
    _app("wrmem", "mosbench", 11610, 5, 7.5, 135, 102, 10, 11, "high",
         "First-Touch", "Round-4K", churn_per_thread_s=WRMEM_CHURN),
    _app("pca", "mosbench", 5779, 0, 0.3, 235, 14, 52, 41, "high",
         "Round-4K", "Round-4K / Carrefour", churn_per_thread_s=2000.0),
    _app("kmeans", "mosbench", 4178, 0, 0.1, 251, 26, 61, 42, "high",
         "Round-4K", "Round-4K", churn_per_thread_s=2000.0),
    _app("psearchy", "mosbench", 28576, 54, 0.8, 19, 8, 6, 46, "low",
         "First-Touch", "Round-4K", churn_per_thread_s=20000.0,
         burst_noise=_LOW_BURST),
    _app("memcached", "mosbench", 2205, 0, 127.1, 85, 74, 13, 12, "low",
         "First-Touch", "Round-1G", churn_per_thread_s=5000.0,
         burst_noise=_LOW_BURST),
    # ---------------------------------------------------------- X-Stream
    _app("belief", "xstream", 12292, 234, 0.0, 206, 80, 19, 10, "high",
         "Round-4K", "Round-4K / Carrefour", shared_write_fraction=0.05),
    _app("bfs", "xstream", 12291, 236, 0.0, 190, 24, 17, 12, "high",
         "Round-4K", "Round-4K", shared_write_fraction=0.05),
    _app("cc", "xstream", 12291, 249, 0.0, 185, 31, 17, 11, "high",
         "Round-4K / Carrefour", "Round-4K / Carrefour",
         shared_write_fraction=0.05),
    _app("pagerank", "xstream", 12291, 240, 0.0, 183, 23, 17, 11, "high",
         "Round-4K / Carrefour", "Round-4K / Carrefour",
         shared_write_fraction=0.05),
    _app("sssp", "xstream", 12291, 261, 0.0, 193, 10, 17, 11, "high",
         "Round-4K / Carrefour", "Round-4K / Carrefour",
         shared_write_fraction=0.05),
    # ---------------------------------------------------------- YCSB
    _app("cassandra", "ycsb", 1111, 16, 10.7, 65, 50, 14, 14, "low",
         "First-Touch / Carrefour", "Round-1G", burst_noise=_LOW_BURST),
    _app("mongodb", "ycsb", 1092, 184, 14.6, 130, 95, 16, 14, "moderate",
         "First-Touch / Carrefour", "Round-1G"),
]

APP_NAMES: List[str] = [app.name for app in APPLICATIONS]

_BY_NAME: Dict[str, AppSpec] = {app.name: app for app in APPLICATIONS}


def get_app(name: str) -> AppSpec:
    """Look an application up by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown application {name!r}; known: {', '.join(APP_NAMES)}"
        ) from None


def apps_in_class(klass: str) -> List[AppSpec]:
    """All applications of one imbalance class ("low"/"moderate"/"high")."""
    return [app for app in APPLICATIONS if app.imbalance_class == klass]
