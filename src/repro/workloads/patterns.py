"""Access-pattern arithmetic: from the paper's measured metrics to model knobs.

The paper characterises every application by two Table 1 measurements made
under native Linux:

* the **load imbalance** under first-touch — how concentrated accesses are
  on the allocating (master) thread's node;
* the **load imbalance** under round-4K — the residue that even spreading
  pages round-robin cannot remove, i.e. how concentrated accesses are on a
  few *hot pages*.

We invert both into model parameters:

* ``master_share`` — the fraction of an application's accesses that hit
  master-initialised (shared) memory. Under first-touch all of that lands
  on one node; with share *a* over *n* nodes the relative standard
  deviation of per-node access counts is ``a * sqrt(n - 1)``
  (derivation: node 0 gets ``a + (1-a)/n``, the others ``(1-a)/n``).
* ``hot_weight`` — the fraction of shared accesses hitting one dominant
  hot page. Under round-4K the spread memory is balanced except for that
  page, so the measured round-4K imbalance is ``hot_weight`` times the
  first-touch one — their ratio recovers the knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SegmentSpec:
    """Abstract description of one memory region of an application.

    Attributes:
        name: label ("shared", "private", ...).
        fraction: share of the footprint.
        init: who first-touches the pages ("master" or "owner").
        access: who accesses them at run time ("all" or "owner").
        weight: share of the application's memory accesses.
        hot_weight: fraction of this segment's accesses going to its
            single hottest page (0 = uniform).
        churn: pages of this segment are continuously freed/reallocated.
        write_fraction: fraction of writes (replication heuristic input).
    """

    name: str
    fraction: float
    init: str
    access: str
    weight: float
    hot_weight: float = 0.0
    churn: bool = False
    write_fraction: float = 0.2


def imbalance_for_master_share(master_share: float, num_nodes: int = 8) -> float:
    """Relative std-dev of node loads when ``master_share`` hits one node.

    The remaining accesses are spread uniformly (each thread local, one
    thread set per node).
    """
    if not 0.0 <= master_share <= 1.0:
        raise ValueError("master_share must be within [0, 1]")
    return master_share * math.sqrt(num_nodes - 1)


def master_share_for_imbalance(
    imbalance: float, num_nodes: int = 8, cap: float = 0.97
) -> float:
    """Invert :func:`imbalance_for_master_share` (clamped to ``cap``)."""
    if imbalance < 0:
        raise ValueError("imbalance must be non-negative")
    share = imbalance / math.sqrt(num_nodes - 1)
    return min(share, cap)


def hot_weight_for_ratio(
    r4k_imbalance: float, ft_imbalance: float, floor: float = 1e-3
) -> float:
    """Hot-page weight from the round-4K / first-touch imbalance ratio.

    A ratio >= 1 means placement barely changes the imbalance — a single
    page dominates (e.g. swaptions: 180% vs 175%).
    """
    if ft_imbalance <= floor:
        return 0.0
    return max(0.0, min(1.0, r4k_imbalance / ft_imbalance))
