"""Xen-like hypervisor: domains, p2m, heap allocator, hypercalls, scheduler."""

from repro.hypervisor.p2m import P2MEntry, P2MTable
from repro.hypervisor.domain import Domain, VCpu
from repro.hypervisor.allocator import XenHeapAllocator, choose_home_nodes
from repro.hypervisor.hypercalls import Hypercall, HypercallTable, HypercallCostModel
from repro.hypervisor.scheduler import Scheduler
from repro.hypervisor.faults import FaultHandler
from repro.hypervisor.ipi import IpiModel, IpiComponent


def __getattr__(name):
    # Hypervisor/XenFeatures live in xen.py, which imports repro.core (the
    # policy layer); loading them lazily breaks the core <-> hypervisor
    # import cycle.
    if name in ("Hypervisor", "XenFeatures", "XEN", "XEN_PLUS"):
        from repro.hypervisor import xen

        return getattr(xen, name)
    raise AttributeError(name)

__all__ = [
    "P2MEntry",
    "P2MTable",
    "Domain",
    "VCpu",
    "XenHeapAllocator",
    "choose_home_nodes",
    "Hypercall",
    "HypercallTable",
    "HypercallCostModel",
    "Scheduler",
    "FaultHandler",
    "IpiModel",
    "IpiComponent",
    "Hypervisor",
    "XenFeatures",
]
