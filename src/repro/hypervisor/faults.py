"""The hypervisor page-fault path.

When a guest access reaches a gpfn whose p2m entry is invalid, the hardware
raises a fault into the hypervisor. The fault handler asks the domain's
NUMA policy where to place the page; the policy answers with a node, the
handler allocates a frame there and installs the entry. This is exactly how
first-touch works at the hypervisor level (paper section 4.2.3): released
pages get invalidated, so the next toucher's node receives the page.

Write faults on write-protected entries are the migration race guard
(section 4.1): the guest spins until the copy finishes and the entry is
remapped; we account their cost.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import P2MError
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain
from repro.util import accumulate_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policies.base import NumaPolicy


class FaultStats:
    """Counters kept by the fault handler.

    Attribute-compatible with the dataclass this replaced, but each field
    is a view over a metric cell registered with the active observability
    session (:mod:`repro.obs`) — the arithmetic is unchanged, so counts
    and the ``seconds_spent`` float stay bit-identical.
    """

    __slots__ = ("_faults", "_wp_faults", "_seconds")

    def __init__(self) -> None:
        reg = obs.registry()
        self._faults = reg.counter("faults.hypervisor")
        self._wp_faults = reg.counter("faults.write_protection")
        self._seconds = reg.counter("faults.seconds_spent", value=0.0)

    @property
    def hypervisor_faults(self) -> int:
        return self._faults.value

    @hypervisor_faults.setter
    def hypervisor_faults(self, value: int) -> None:
        self._faults.value = value

    @property
    def write_protection_faults(self) -> int:
        return self._wp_faults.value

    @write_protection_faults.setter
    def write_protection_faults(self, value: int) -> None:
        self._wp_faults.value = value

    @property
    def seconds_spent(self) -> float:
        return self._seconds.value

    @seconds_spent.setter
    def seconds_spent(self, value: float) -> None:
        self._seconds.value = value


class FaultHandler:
    """Resolves hypervisor page faults through the domain's NUMA policy.

    Args:
        allocator: heap used to back faulting pages.
        fault_cost_seconds: guest exit + entry + table walk per fault.
    """

    def __init__(self, allocator: XenHeapAllocator, fault_cost_seconds: float = 2.0e-6):
        self.allocator = allocator
        self.fault_cost_seconds = fault_cost_seconds
        self.stats = FaultStats()

    def on_access(self, domain: Domain, vcpu_id: int, gpfn: int, node_of_vcpu: int) -> int:
        """Resolve one guest access; returns the backing mfn.

        Fast path: valid entry, no cost. Slow path: the domain's policy
        picks a node (first-touch answers ``node_of_vcpu``), the handler
        allocates and maps a frame there.
        """
        mfn = domain.p2m.mfn_if_valid(gpfn)
        if mfn >= 0:
            return mfn
        return self.handle_fault(domain, vcpu_id, gpfn, node_of_vcpu)

    def handle_fault(self, domain: Domain, vcpu_id: int, gpfn: int, node_of_vcpu: int) -> int:
        """Take the hypervisor fault path for ``gpfn``."""
        self.stats.hypervisor_faults += 1
        self.stats.seconds_spent += self.fault_cost_seconds
        policy = domain.numa_policy
        if policy is not None:
            node = policy.on_hypervisor_fault(domain, vcpu_id, gpfn, node_of_vcpu)
        else:
            # No policy: fall back to the first home node.
            node = domain.home_nodes[0]
        mfn = self.allocator.alloc_page_on(node)
        domain.p2m.set_entry(gpfn, mfn)
        return mfn

    def handle_faults(
        self,
        domain: Domain,
        vcpu_id: int,
        gpfns: np.ndarray,
        node_of_vcpu: int,
    ) -> Optional[np.ndarray]:
        """Take the fault path for a whole (all-invalid) gpfn array.

        Only usable when the policy's fault answer does not depend on the
        individual gpfn — policies advertise that with
        ``fault_node_is_vcpu_node`` (first-touch: the faulting vCPU's
        node). Returns None when the answer is per-page, in which case
        the caller must fault page by page; otherwise the stats, the
        frames and the entries come out exactly as the scalar loop's.
        """
        policy = domain.numa_policy
        if policy is None:
            node = domain.home_nodes[0]
        elif getattr(policy, "fault_node_is_vcpu_node", False):
            node = node_of_vcpu
        else:
            return None
        count = int(len(gpfns))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        self.stats.hypervisor_faults += count
        self.stats.seconds_spent = accumulate_cost(
            self.stats.seconds_spent, self.fault_cost_seconds, count
        )
        mfns = self.allocator.alloc_pages_on(node, count)
        domain.p2m.set_entries(gpfns, mfns)
        tr = obs.tracer()
        if tr.enabled:
            tr.instant(
                "fault.storm",
                cat="hypervisor",
                domain=domain.domain_id,
                pages=count,
                node=int(node),
            )
        return mfns

    def on_write_protected(self, domain: Domain, gpfn: int, wait_seconds: float = 1.0e-6) -> None:
        """Account a write fault against a page being migrated.

        The fault is only legitimate mid-migration: the entry must be
        valid *and* write-protected. A write fault reported against a
        still-writable entry is a migration-protocol violation (the
        hardware could not have trapped that write) and is rejected
        before any accounting happens.
        """
        entry = domain.p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"write-protection fault on invalid gpfn {gpfn:#x}")
        if entry.writable:
            raise P2MError(
                f"write-protection fault on writable gpfn {gpfn:#x}: "
                f"no migration write-protected this entry"
            )
        sanitizer = domain.p2m.sanitizer
        if sanitizer is not None:
            sanitizer.write_protection_fault(domain.domain_id, gpfn)
        self.stats.write_protection_faults += 1
        self.stats.seconds_spent += wait_seconds
        tr = obs.tracer()
        if tr.enabled:
            tr.instant(
                "fault.write_protected",
                cat="hypervisor",
                domain=domain.domain_id,
                gpfn=int(gpfn),
            )
