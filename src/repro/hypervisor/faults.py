"""The hypervisor page-fault path.

When a guest access reaches a gpfn whose p2m entry is invalid, the hardware
raises a fault into the hypervisor. The fault handler asks the domain's
NUMA policy where to place the page; the policy answers with a node, the
handler allocates a frame there and installs the entry. This is exactly how
first-touch works at the hypervisor level (paper section 4.2.3): released
pages get invalidated, so the next toucher's node receives the page.

Write faults on write-protected entries are the migration race guard
(section 4.1): the guest spins until the copy finishes and the entry is
remapped; we account their cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.errors import P2MError
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain
from repro.util import accumulate_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policies.base import NumaPolicy


@dataclass
class FaultStats:
    """Counters kept by the fault handler."""

    hypervisor_faults: int = 0
    write_protection_faults: int = 0
    seconds_spent: float = 0.0


class FaultHandler:
    """Resolves hypervisor page faults through the domain's NUMA policy.

    Args:
        allocator: heap used to back faulting pages.
        fault_cost_seconds: guest exit + entry + table walk per fault.
    """

    def __init__(self, allocator: XenHeapAllocator, fault_cost_seconds: float = 2.0e-6):
        self.allocator = allocator
        self.fault_cost_seconds = fault_cost_seconds
        self.stats = FaultStats()

    def on_access(self, domain: Domain, vcpu_id: int, gpfn: int, node_of_vcpu: int) -> int:
        """Resolve one guest access; returns the backing mfn.

        Fast path: valid entry, no cost. Slow path: the domain's policy
        picks a node (first-touch answers ``node_of_vcpu``), the handler
        allocates and maps a frame there.
        """
        mfn = domain.p2m.mfn_if_valid(gpfn)
        if mfn >= 0:
            return mfn
        return self.handle_fault(domain, vcpu_id, gpfn, node_of_vcpu)

    def handle_fault(self, domain: Domain, vcpu_id: int, gpfn: int, node_of_vcpu: int) -> int:
        """Take the hypervisor fault path for ``gpfn``."""
        self.stats.hypervisor_faults += 1
        self.stats.seconds_spent += self.fault_cost_seconds
        policy = domain.numa_policy
        if policy is not None:
            node = policy.on_hypervisor_fault(domain, vcpu_id, gpfn, node_of_vcpu)
        else:
            # No policy: fall back to the first home node.
            node = domain.home_nodes[0]
        mfn = self.allocator.alloc_page_on(node)
        domain.p2m.set_entry(gpfn, mfn)
        return mfn

    def handle_faults(
        self,
        domain: Domain,
        vcpu_id: int,
        gpfns: np.ndarray,
        node_of_vcpu: int,
    ) -> Optional[np.ndarray]:
        """Take the fault path for a whole (all-invalid) gpfn array.

        Only usable when the policy's fault answer does not depend on the
        individual gpfn — policies advertise that with
        ``fault_node_is_vcpu_node`` (first-touch: the faulting vCPU's
        node). Returns None when the answer is per-page, in which case
        the caller must fault page by page; otherwise the stats, the
        frames and the entries come out exactly as the scalar loop's.
        """
        policy = domain.numa_policy
        if policy is None:
            node = domain.home_nodes[0]
        elif getattr(policy, "fault_node_is_vcpu_node", False):
            node = node_of_vcpu
        else:
            return None
        count = int(len(gpfns))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        self.stats.hypervisor_faults += count
        self.stats.seconds_spent = accumulate_cost(
            self.stats.seconds_spent, self.fault_cost_seconds, count
        )
        mfns = self.allocator.alloc_pages_on(node, count)
        domain.p2m.set_entries(gpfns, mfns)
        return mfns

    def on_write_protected(self, domain: Domain, gpfn: int, wait_seconds: float = 1.0e-6) -> None:
        """Account a write fault against a page being migrated."""
        entry = domain.p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"write-protection fault on invalid gpfn {gpfn:#x}")
        self.stats.write_protection_faults += 1
        self.stats.seconds_spent += wait_seconds
