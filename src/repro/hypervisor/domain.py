"""Domains (virtual machines) and virtual CPUs.

Xen calls virtual machines *domains*: ``dom0`` is the privileged management
domain (it also drives I/O for the others), ``domU`` domains run guests.
A domain holds vCPUs, a guest-physical address space backed by the p2m
table, and — in this reproduction — the handle of its active NUMA policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import DomainError
from repro.hypervisor.p2m import P2MTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policies.base import NumaPolicy


@dataclass
class VCpu:
    """A virtual CPU of a domain.

    Attributes:
        domain_id: owning domain.
        vcpu_id: index inside the domain.
        pinned_pcpu: hard affinity to a physical CPU (the paper pins all
            vCPUs in every experiment to remove scheduler noise).
    """

    domain_id: int
    vcpu_id: int
    pinned_pcpu: Optional[int] = None

    @property
    def key(self) -> Tuple[int, int]:
        return (self.domain_id, self.vcpu_id)


class Domain:
    """A virtual machine.

    Args:
        domain_id: 0 for dom0, >0 for domU.
        name: human-readable label.
        num_vcpus: vCPU count.
        memory_pages: guest-physical pages (simulated pages).
        home_nodes: NUMA nodes the domain's memory is packed onto
            (chosen by the hypervisor at creation, paper section 3.3).
    """

    def __init__(
        self,
        domain_id: int,
        name: str,
        num_vcpus: int,
        memory_pages: int,
        home_nodes: Sequence[int],
    ):
        if num_vcpus < 1:
            raise DomainError("a domain needs at least one vCPU")
        if memory_pages < 1:
            raise DomainError("a domain needs memory")
        if not home_nodes:
            raise DomainError("a domain needs at least one home node")
        self.domain_id = domain_id
        self.name = name
        self.memory_pages = memory_pages
        self.home_nodes: Tuple[int, ...] = tuple(home_nodes)
        self.vcpus: List[VCpu] = [VCpu(domain_id, i) for i in range(num_vcpus)]
        self.p2m = P2MTable(domain_id, capacity=memory_pages)
        #: The active NUMA policy object (set by the policy manager).
        self.numa_policy: Optional["NumaPolicy"] = None
        #: True once the domain's memory is populated.
        self.built = False

    @property
    def is_dom0(self) -> bool:
        return self.domain_id == 0

    @property
    def num_vcpus(self) -> int:
        return len(self.vcpus)

    def pin_vcpu(self, vcpu_id: int, pcpu: int) -> None:
        """Hard-pin one vCPU to a physical CPU."""
        self.vcpus[vcpu_id].pinned_pcpu = pcpu

    def gpfn_range(self) -> range:
        """All guest-physical frame numbers of the domain."""
        return range(self.memory_pages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "dom0" if self.is_dom0 else "domU"
        return (
            f"Domain({self.domain_id}:{self.name}, {kind}, "
            f"{self.num_vcpus} vCPUs, {self.memory_pages} pages, "
            f"home={list(self.home_nodes)})"
        )
