"""Domains (virtual machines) and virtual CPUs.

Xen calls virtual machines *domains*: ``dom0`` is the privileged management
domain (it also drives I/O for the others), ``domU`` domains run guests.
A domain holds vCPUs, a guest-physical address space backed by the p2m
table, and — in this reproduction — the handle of its active NUMA policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.errors import DomainError
from repro.hypervisor.p2m import P2MTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policies.base import NumaPolicy


@dataclass
class VCpu:
    """A virtual CPU of a domain.

    Attributes:
        domain_id: owning domain.
        vcpu_id: index inside the domain.
        pinned_pcpu: hard affinity to a physical CPU (the paper pins all
            vCPUs in every experiment to remove scheduler noise).
    """

    domain_id: int
    vcpu_id: int
    pinned_pcpu: Optional[int] = None

    @property
    def key(self) -> Tuple[int, int]:
        return (self.domain_id, self.vcpu_id)


class Domain:
    """A virtual machine.

    Args:
        domain_id: 0 for dom0, >0 for domU.
        name: human-readable label.
        num_vcpus: vCPU count.
        memory_pages: guest-physical pages (simulated pages).
        home_nodes: NUMA nodes the domain's memory is packed onto
            (chosen by the hypervisor at creation, paper section 3.3).
    """

    def __init__(
        self,
        domain_id: int,
        name: str,
        num_vcpus: int,
        memory_pages: int,
        home_nodes: Sequence[int],
    ):
        if num_vcpus < 1:
            raise DomainError("a domain needs at least one vCPU")
        if memory_pages < 1:
            raise DomainError("a domain needs memory")
        if not home_nodes:
            raise DomainError("a domain needs at least one home node")
        self.domain_id = domain_id
        self.name = name
        self.memory_pages = memory_pages
        self.home_nodes: Tuple[int, ...] = tuple(home_nodes)
        self.vcpus: List[VCpu] = [VCpu(domain_id, i) for i in range(num_vcpus)]
        self.p2m = P2MTable(domain_id, capacity=memory_pages)
        #: The active NUMA policy object (set by the policy manager).
        self.numa_policy: Optional["NumaPolicy"] = None
        #: True once the domain's memory is populated.
        self.built = False
        #: A paused domain's vCPUs make no progress and its guest takes
        #: no faults — the stop-and-copy window of a live migration.
        self.paused = False
        #: Lazy guest memory content model: one int64 write-stamp per
        #: gpfn (0 = never written). We do not simulate byte-level
        #: contents; a page's "content" is the stamp of the last guest
        #: write — exactly what live migration needs, since a destination
        #: page is a correct copy iff its stamp equals the source's at
        #: cutover. Worlds that never write pay one attribute check.
        self._memory_image: Optional[np.ndarray] = None

    def _ensure_image(self) -> None:
        if self._memory_image is None:
            self._memory_image = np.zeros(self.memory_pages, dtype=np.int64)

    def write_stamp(self, gpfn: int, stamp: int) -> None:
        """Record a guest write: ``gpfn``'s content becomes ``stamp``."""
        self._ensure_image()
        self._memory_image[gpfn] = stamp

    def read_stamps(self, gpfns) -> np.ndarray:
        """Write stamps of ``gpfns``, as a fresh array (0 = never written)."""
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if self._memory_image is None:
            return np.zeros(gpfns.shape, dtype=np.int64)
        return self._memory_image[gpfns].copy()

    def copy_stamps_from(self, source: "Domain", gpfns) -> None:
        """Copy page contents of ``gpfns`` from ``source``'s image.

        The data mover of a live-migration copy round; the *caller* owns
        the protocol (pages must be write-protected on the source first).
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if gpfns.size == 0:
            return
        self._ensure_image()
        self._memory_image[gpfns] = source.read_stamps(gpfns)

    def image_snapshot(self) -> np.ndarray:
        """Full copy of the content image (oracle/byte-identity checks)."""
        self._ensure_image()
        return self._memory_image.copy()

    @property
    def is_dom0(self) -> bool:
        return self.domain_id == 0

    @property
    def num_vcpus(self) -> int:
        return len(self.vcpus)

    def pin_vcpu(self, vcpu_id: int, pcpu: int) -> None:
        """Hard-pin one vCPU to a physical CPU."""
        self.vcpus[vcpu_id].pinned_pcpu = pcpu

    def gpfn_range(self) -> range:
        """All guest-physical frame numbers of the domain."""
        return range(self.memory_pages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "dom0" if self.is_dom0 else "domU"
        return (
            f"Domain({self.domain_id}:{self.name}, {kind}, "
            f"{self.num_vcpus} vCPUs, {self.memory_pages} pages, "
            f"home={list(self.home_nodes)})"
        )
