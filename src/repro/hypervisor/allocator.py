"""The Xen heap allocator and the default round-1G placement.

Xen eagerly allocates a domain's whole physical memory at creation (paper
section 3.3). It first packs the domain onto the minimal number of
underloaded NUMA nodes that can host its vCPUs and memory — the domain's
*home nodes* — then fills the guest-physical space:

* by regions of 1 GiB, round-robin over the home nodes;
* falling back to 2 MiB regions, then 4 KiB pages, on fragmentation or for
  remainders;
* the first and last guest-physical GiB are always fragmented (BIOS and
  I/O windows) and are populated at 4 KiB granularity.

This module also provides the per-page allocation primitives used by the
other policies (round-4K at domain build, first-touch at fault time), with
Linux-style round-robin fallback when the preferred node is exhausted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.config import SimConfig
from repro.errors import OutOfMemoryError
from repro.hardware.machine import Machine
from repro.hypervisor.domain import Domain
from repro.util import RoundRobin as _RoundRobin


def _vectorized() -> bool:
    # Imported lazily: repro.core's package init imports this module
    # (via the interface), so a top-level import would be circular.
    from repro.core import batch

    return batch.vectorized()

GIB = 1 << 30
MIB_2 = 2 << 20


def choose_home_nodes(
    machine: Machine,
    num_vcpus: int,
    memory_pages: int,
    reserved_cpus: Sequence[int] = (),
    preferred: Optional[Sequence[int]] = None,
) -> Tuple[int, ...]:
    """Pick the minimal set of underloaded nodes for a new domain.

    Mirrors Xen's soft-affinity placement: reserve one physical CPU per
    vCPU, pack onto as few nodes as possible, require enough free frames.

    Args:
        machine: the hardware.
        num_vcpus: vCPUs to host (one pCPU reserved each).
        memory_pages: frames the domain needs.
        reserved_cpus: pCPUs already claimed by other domains.
        preferred: explicit node list (validated, used as-is) — the paper
            pins VM placement in the multi-VM experiments.
    """
    topo = machine.topology
    if preferred is not None:
        nodes = tuple(preferred)
        for n in nodes:
            if not 0 <= n < topo.num_nodes:
                raise OutOfMemoryError(f"preferred node {n} does not exist")
        return nodes

    reserved = set(reserved_cpus)
    free_cpus = {
        n: sum(1 for c in topo.cpus_of_node(n) if c not in reserved)
        for n in range(topo.num_nodes)
    }
    free_frames = {
        n: machine.memory.free_frames_on(n) for n in range(topo.num_nodes)
    }
    # Greedy: order nodes by free capacity, take the fewest that fit.
    order = sorted(
        range(topo.num_nodes),
        key=lambda n: (free_cpus[n], free_frames[n]),
        reverse=True,
    )
    chosen: List[int] = []
    cpus_needed, frames_needed = num_vcpus, memory_pages
    for node in order:
        if cpus_needed <= 0 and frames_needed <= 0:
            break
        if free_cpus[node] == 0 and free_frames[node] == 0:
            continue
        chosen.append(node)
        cpus_needed -= free_cpus[node]
        frames_needed -= free_frames[node]
    if cpus_needed > 0 or frames_needed > 0:
        raise OutOfMemoryError(
            f"cannot place domain: short {max(cpus_needed, 0)} CPUs, "
            f"{max(frames_needed, 0)} frames"
        )
    return tuple(sorted(chosen))


class XenHeapAllocator:
    """Domain memory population on top of the machine frame allocator."""

    def __init__(self, machine: Machine, config: SimConfig):
        self.machine = machine
        self.config = config
        # Region sizes in simulated pages (at least one page each).
        self.gib_pages = max(1, GIB // config.page_bytes)
        self.mib2_pages = max(1, MIB_2 // config.page_bytes)

    @staticmethod
    def _trace_populate(event: str, domain: Domain, pages: int) -> None:
        tr = obs.tracer()
        if tr.enabled:
            tr.instant(
                event, cat="hypervisor", domain=domain.domain_id, pages=pages
            )

    # ------------------------------------------------------------------
    # Whole-domain population

    def populate_round_1g(self, domain: Domain) -> None:
        """Xen's default placement: 1 GiB regions round-robin on home nodes.

        The first and last guest-physical GiB are treated as fragmented
        (BIOS / I/O windows) and populated page-by-page.
        """
        total = domain.memory_pages
        frag_head = min(self.gib_pages, total)
        frag_tail = min(self.gib_pages, max(0, total - frag_head))
        middle = total - frag_head - frag_tail

        rr = _RoundRobin(domain.home_nodes)
        gpfn = 0
        gpfn = self._populate_pages(domain, gpfn, frag_head, rr)
        gpfn = self._populate_regions(domain, gpfn, middle, rr)
        gpfn = self._populate_pages(domain, gpfn, frag_tail, rr)
        assert gpfn == total
        domain.built = True
        self._trace_populate("allocator.populate_round_1g", domain, total)

    def populate_round_4k(self, domain: Domain) -> None:
        """Static 4 KiB round-robin over the home nodes (paper section 4.3)."""
        rr = _RoundRobin(domain.home_nodes)
        self._populate_pages(domain, 0, domain.memory_pages, rr)
        domain.built = True
        self._trace_populate("allocator.populate_round_4k", domain, domain.memory_pages)

    def populate_empty(self, domain: Domain) -> None:
        """Leave all entries unpopulated — every first access faults.

        Used when a domain boots directly under first-touch (the common
        paper configuration boots round-4K then switches, but the empty
        mode exercises the pure fault-driven path).
        """
        domain.built = True
        self._trace_populate("allocator.populate_empty", domain, 0)

    def depopulate(self, domain: Domain) -> int:
        """Free every frame of the domain (teardown). Returns frames freed."""
        p2m = domain.p2m
        if (
            _vectorized()
            and p2m.sanitizer is None
            and self.machine.memory.sanitizer is None
        ):
            gpfns = np.arange(
                domain.gpfn_range().start,
                domain.gpfn_range().stop,
                dtype=np.int64,
            )
            mfns = p2m.remove_many(gpfns)
            self.machine.memory.free_frames_many(mfns)
            domain.built = False
            self._trace_populate("allocator.depopulate", domain, int(mfns.size))
            return int(mfns.size)
        freed = 0
        for gpfn in list(domain.gpfn_range()):
            mfn = p2m.remove(gpfn)
            if mfn is not None:
                self.machine.memory.free_frames(mfn, 1)
                freed += 1
        domain.built = False
        self._trace_populate("allocator.depopulate", domain, freed)
        return freed

    # ------------------------------------------------------------------
    # Page-level primitives (used by policies)

    def alloc_page_on(self, node: int) -> int:
        """Allocate one frame on ``node``, with round-robin fallback.

        Like Linux's first-touch fallback (paper section 3.1): if the
        preferred node is exhausted, steal from the others round-robin.
        """
        mfn = self.machine.memory.alloc_frames(node, 1)
        if mfn is not None:
            return mfn
        num = self.machine.num_nodes
        for offset in range(1, num):
            candidate = (node + offset) % num
            mfn = self.machine.memory.alloc_frames(candidate, 1)
            if mfn is not None:
                return mfn
        raise OutOfMemoryError("machine is out of memory")

    def free_page(self, mfn: int) -> None:
        """Return one frame to the heap."""
        self.machine.memory.free_frames(mfn, 1)

    def alloc_pages_on(self, node: int, count: int) -> np.ndarray:
        """``count`` frames as repeated :meth:`alloc_page_on` calls.

        Per node the frames come off the extent list front to back, so
        draining the preferred node and then the round-robin fallback
        nodes in bulk yields exactly the frames the scalar loop would.
        """
        memory = self.machine.memory
        if count < 1:
            return np.empty(0, dtype=np.int64)
        if memory.sanitizer is not None or not _vectorized():
            return np.fromiter(
                (self.alloc_page_on(node) for _ in range(count)),
                dtype=np.int64,
                count=count,
            )
        out = np.empty(count, dtype=np.int64)
        filled = 0
        num = self.machine.num_nodes
        for offset in range(num):
            if filled == count:
                break
            candidate = (node + offset) % num
            take = min(memory.free_frames_on(candidate), count - filled)
            if take:
                out[filled : filled + take] = memory.alloc_singles(
                    candidate, take
                )
                filled += take
        if filled < count:
            raise OutOfMemoryError("machine is out of memory")
        return out

    def free_pages(self, mfns: Union[Sequence[int], np.ndarray]) -> None:
        """Return a batch of single frames to the heap."""
        if self.machine.memory.sanitizer is not None or not _vectorized():
            for mfn in np.asarray(mfns, dtype=np.int64).tolist():
                self.free_page(mfn)
            return
        self.machine.memory.free_frames_many(mfns)

    # ------------------------------------------------------------------
    # Internals

    def _populate_pages(
        self, domain: Domain, gpfn: int, count: int, rr: "_RoundRobin"
    ) -> int:
        if count < 1:
            return gpfn
        memory = self.machine.memory
        if (
            not _vectorized()
            or domain.p2m.sanitizer is not None
            or memory.sanitizer is not None
        ):
            for _ in range(count):
                node = rr.next()
                mfn = self.alloc_page_on(node)
                domain.p2m.set_entry(gpfn, mfn)
                gpfn += 1
            return gpfn
        pattern = np.asarray(rr.next_many(count), dtype=np.int64)
        node_counts = np.bincount(pattern, minlength=self.machine.num_nodes)
        if all(
            memory.free_frames_on(n) >= int(c)
            for n, c in enumerate(node_counts.tolist())
            if c
        ):
            # Per node, repeated single allocations are front-to-back and
            # independent of the other nodes, so each node's share can be
            # carved out in one call and scattered into pattern order.
            mfns = np.empty(count, dtype=np.int64)
            for node, node_count in enumerate(node_counts.tolist()):
                if node_count:
                    positions = np.nonzero(pattern == node)[0]
                    mfns[positions] = memory.alloc_singles(node, node_count)
            domain.p2m.set_entries(
                np.arange(gpfn, gpfn + count, dtype=np.int64), mfns
            )
            return gpfn + count
        # A node would run dry mid-way: the cross-node fallback order is
        # position-dependent, so replay the already-drawn pattern serially.
        for node in pattern.tolist():
            mfn = self.alloc_page_on(node)
            domain.p2m.set_entry(gpfn, mfn)
            gpfn += 1
        return gpfn

    def _populate_regions(
        self, domain: Domain, gpfn: int, count: int, rr: "_RoundRobin"
    ) -> int:
        """Fill ``count`` pages using 1G -> 2M -> 4K fallback."""
        remaining = count
        while remaining > 0:
            placed = False
            for region in (self.gib_pages, self.mib2_pages, 1):
                if remaining < region:
                    continue
                node = rr.peek()
                mfn = self.machine.memory.alloc_frames(node, region)
                if mfn is None:
                    continue
                rr.next()
                if (
                    region > 1
                    and _vectorized()
                    and domain.p2m.sanitizer is None
                ):
                    domain.p2m.set_entries(
                        np.arange(gpfn, gpfn + region, dtype=np.int64),
                        np.arange(mfn, mfn + region, dtype=np.int64),
                    )
                else:
                    for i in range(region):
                        domain.p2m.set_entry(gpfn + i, mfn + i)
                gpfn += region
                remaining -= region
                placed = True
                break
            if not placed:
                # Total fragmentation on the preferred node: single pages
                # with cross-node fallback.
                node = rr.next()
                mfn = self.alloc_page_on(node)
                domain.p2m.set_entry(gpfn, mfn)
                gpfn += 1
                remaining -= 1
        return gpfn
