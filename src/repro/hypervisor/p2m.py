"""The hypervisor page table (p2m): guest-physical -> machine mapping.

Xen isolates each virtual machine's memory with a per-domain hardware page
table mapping the domain's *physical* (guest-physical) frames to *machine*
frames (paper section 2.1). This table is the lever of every NUMA policy in
the paper (section 4.1):

* a policy *places* a guest page on a node by mapping its gpfn to an mfn of
  that node;
* first-touch *traps* the first access to a page by leaving/making the
  entry invalid, so the access raises a hypervisor page fault;
* Carrefour *migrates* a page by write-protecting the entry, copying the
  frame, then remapping.

Like a real page table — and unlike the dict-of-objects backend this
replaced (kept as :class:`repro.perfbench.oracle.DictP2MTable`) — the
table is contiguous array state: parallel ``mfn``/``flags``/``node``
arrays indexed by gpfn, with maintained entry/valid counts. The scalar
method API is unchanged; ``set_entries``/``invalidate_many``/
``translate_many`` operate on whole gpfn arrays. When a sanitizer is
attached the batch entry points delegate to the scalar loops so traps
fire per-entry in the same order, with the same already-applied prefix,
as the dict backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import P2MError

#: Flag bits of the packed ``flags`` array. PRESENT distinguishes "never
#: populated / removed" from "populated but invalid" (the first-touch
#: trap state, which keeps PRESENT).
PRESENT = 1
VALID = 2
WRITABLE = 4

_GpfnArray = Union[Sequence[int], np.ndarray]


@dataclass
class P2MEntry:
    """One hypervisor page table entry (plain-record form).

    The array backend hands out live :class:`P2MEntryView` objects with
    the same attributes; this dataclass remains the storage of the scalar
    oracle backend and the documented shape of an entry.

    Attributes:
        mfn: backing machine frame.
        valid: invalid entries fault on access (first-touch trap).
        writable: cleared during migration to freeze the page content.
    """

    mfn: int
    valid: bool = True
    writable: bool = True


class P2MEntryView:
    """Live view of one array-backed entry.

    Attribute-compatible with :class:`P2MEntry`; reads and writes go
    straight to the table's arrays (the sanitizer tests flip ``writable``
    through this view to forge out-of-order migrations).
    """

    __slots__ = ("_table", "_gpfn")

    def __init__(self, table: "P2MTable", gpfn: int):
        self._table = table
        self._gpfn = gpfn

    @property
    def mfn(self) -> int:
        return int(self._table._mfn[self._gpfn])

    @mfn.setter
    def mfn(self, value: int) -> None:
        self._table._mfn[self._gpfn] = value
        self._table._sync_node(self._gpfn)

    @property
    def valid(self) -> bool:
        return bool(self._table._flags[self._gpfn] & VALID)

    @valid.setter
    def valid(self, value: bool) -> None:
        flags = int(self._table._flags[self._gpfn])
        if bool(flags & VALID) == bool(value):
            return
        self._table._flags[self._gpfn] = flags ^ VALID
        self._table._num_valid += 1 if value else -1

    @property
    def writable(self) -> bool:
        return bool(self._table._flags[self._gpfn] & WRITABLE)

    @writable.setter
    def writable(self, value: bool) -> None:
        flags = int(self._table._flags[self._gpfn])
        if value:
            self._table._flags[self._gpfn] = flags | WRITABLE
        else:
            self._table._flags[self._gpfn] = flags & ~WRITABLE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"P2MEntryView(gpfn={self._gpfn}, mfn={self.mfn}, "
            f"valid={self.valid}, writable={self.writable})"
        )


class P2MTable:
    """Per-domain guest-physical to machine frame mapping.

    The table is sparse: a gpfn without an entry has never been populated.
    An entry can also exist but be *invalid* — the distinction matters for
    first-touch, which invalidates entries of released pages while the
    guest still considers those gpfns part of its physical memory.

    Args:
        domain_id: owning domain.
        capacity: initial gpfn capacity hint (the arrays grow
            geometrically past it on demand).
    """

    def __init__(self, domain_id: int, capacity: int = 1024):
        self.domain_id = domain_id
        cap = max(int(capacity), 1)
        self._mfn = np.full(cap, -1, dtype=np.int64)
        self._flags = np.zeros(cap, dtype=np.uint8)
        self._node = np.full(cap, -1, dtype=np.int32)
        self._num_entries = 0
        self._num_valid = 0
        # Statistics used by the experiments — attribute views over
        # metric cells registered with the active observability session.
        reg = obs.registry()
        self._faults_taken = reg.counter("p2m.faults_taken", domain=domain_id)
        self._invalidations = reg.counter("p2m.invalidations", domain=domain_id)
        self._migrations = reg.counter("p2m.migrations", domain=domain_id)
        #: Optional observer notified of mapping changes; the simulation
        #: engine uses it to keep page->node placement views in sync.
        #: Must provide ``entry_set(gpfn, mfn)`` and ``entry_invalidated(gpfn)``;
        #: batch mutations use ``entries_set(gpfns, mfns)`` /
        #: ``entries_invalidated(gpfns)`` when the observer has them.
        self.observer: Optional[object] = None
        #: Optional :class:`repro.lint.sanitizer.P2MSanitizer`; checked
        #: before every mutation so a trapped violation leaves the table
        #: unchanged. Attached by the hypervisor when sanitizing.
        self.sanitizer: Optional[object] = None
        #: When the hypervisor sets this, the ``node`` array mirrors
        #: ``mfn // frames_per_node`` so placement consumers can read
        #: page nodes without translating frame by frame.
        self.frames_per_node: Optional[int] = None

    # ------------------------------------------------------------------
    # Array plumbing

    def _ensure(self, gpfn: int) -> None:
        cap = self._mfn.size
        if gpfn < cap:
            return
        new_cap = max(cap * 2, gpfn + 1)
        for name, fill in (("_mfn", -1), ("_flags", 0), ("_node", -1)):
            old = getattr(self, name)
            grown = np.full(new_cap, fill, dtype=old.dtype)
            grown[:cap] = old
            setattr(self, name, grown)

    def _sync_node(self, gpfn: int) -> None:
        mfn = int(self._mfn[gpfn])
        if self.frames_per_node is not None and mfn >= 0:
            self._node[gpfn] = mfn // self.frames_per_node
        else:
            self._node[gpfn] = -1

    # ------------------------------------------------------------------
    # Population

    def set_entry(self, gpfn: int, mfn: int, writable: bool = True) -> None:
        """Map ``gpfn`` to ``mfn`` (creating or revalidating the entry)."""
        if gpfn < 0 or mfn < 0:
            raise P2MError("frame numbers must be non-negative")
        if self.sanitizer is not None:
            self.sanitizer.entry_set(self.domain_id, gpfn, mfn)
        self._ensure(gpfn)
        flags = int(self._flags[gpfn])
        if not flags & PRESENT:
            self._num_entries += 1
        if not flags & VALID:
            self._num_valid += 1
        self._flags[gpfn] = PRESENT | VALID | (WRITABLE if writable else 0)
        self._mfn[gpfn] = mfn
        self._sync_node(gpfn)
        if self.observer is not None:
            self.observer.entry_set(gpfn, mfn)

    def invalidate(self, gpfn: int) -> Optional[int]:
        """Invalidate the entry for ``gpfn``; next access faults.

        Returns the machine frame that was backing the page (so the caller
        can return it to the heap), or None if the entry was absent or
        already invalid.
        """
        if gpfn < 0 or gpfn >= self._mfn.size:
            return None
        flags = int(self._flags[gpfn])
        if not flags & VALID:
            return None
        self._flags[gpfn] = flags & ~VALID
        self._num_valid -= 1
        self.invalidations += 1
        mfn = int(self._mfn[gpfn])
        self._mfn[gpfn] = -1
        self._node[gpfn] = -1
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return mfn

    def remove(self, gpfn: int) -> Optional[int]:
        """Drop the entry entirely (domain teardown). Returns the mfn if valid."""
        if gpfn < 0 or gpfn >= self._mfn.size:
            return None
        flags = int(self._flags[gpfn])
        if not flags & PRESENT:
            return None
        self._num_entries -= 1
        mfn = int(self._mfn[gpfn])
        self._flags[gpfn] = 0
        self._mfn[gpfn] = -1
        self._node[gpfn] = -1
        if not flags & VALID:
            return None
        self._num_valid -= 1
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return mfn

    # ------------------------------------------------------------------
    # Batch population (the vectorized page path)

    def set_entries(
        self, gpfns: _GpfnArray, mfns: _GpfnArray, writable: bool = True
    ) -> None:
        """Map each ``gpfns[i]`` to ``mfns[i]`` in one array operation.

        Equivalent to calling :meth:`set_entry` per pair, except that
        validation is all-or-nothing and the observer sees one batch
        notification. ``gpfns`` must be duplicate-free (duplicates and
        sanitized tables fall back to the scalar loop).
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        mfns = np.asarray(mfns, dtype=np.int64)
        if gpfns.shape != mfns.shape:
            raise P2MError("set_entries needs matching gpfn/mfn arrays")
        if gpfns.size == 0:
            return
        if self.sanitizer is not None or np.unique(gpfns).size != gpfns.size:
            for gpfn, mfn in zip(gpfns.tolist(), mfns.tolist()):
                self.set_entry(gpfn, mfn, writable)
            return
        if int(gpfns.min()) < 0 or int(mfns.min()) < 0:
            raise P2MError("frame numbers must be non-negative")
        self._ensure(int(gpfns.max()))
        flags = self._flags[gpfns]
        self._num_entries += int(np.count_nonzero((flags & PRESENT) == 0))
        self._num_valid += int(np.count_nonzero((flags & VALID) == 0))
        self._flags[gpfns] = PRESENT | VALID | (WRITABLE if writable else 0)
        self._mfn[gpfns] = mfns
        if self.frames_per_node is not None:
            self._node[gpfns] = mfns // self.frames_per_node
        else:
            self._node[gpfns] = -1
        observer = self.observer
        if observer is not None:
            batch_hook = getattr(observer, "entries_set", None)
            if batch_hook is not None:
                batch_hook(gpfns, mfns)
            else:
                for gpfn, mfn in zip(gpfns.tolist(), mfns.tolist()):
                    observer.entry_set(gpfn, mfn)

    def invalidate_many(
        self, gpfns: _GpfnArray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Invalidate every valid entry among ``gpfns``.

        Returns ``(invalidated_gpfns, mfns)`` in input order — exactly the
        pairs a per-gpfn :meth:`invalidate` loop would have returned, with
        absent/invalid entries skipped.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if self.sanitizer is not None or (
            gpfns.size and np.unique(gpfns).size != gpfns.size
        ):
            hit_gpfns, hit_mfns = [], []
            for gpfn in gpfns.tolist():
                mfn = self.invalidate(gpfn)
                if mfn is not None:
                    hit_gpfns.append(gpfn)
                    hit_mfns.append(mfn)
            return (
                np.asarray(hit_gpfns, dtype=np.int64),
                np.asarray(hit_mfns, dtype=np.int64),
            )
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        sel = gpfns[in_range]
        sel = sel[(self._flags[sel] & VALID) != 0]
        if sel.size == 0:
            return sel, np.empty(0, dtype=np.int64)
        mfns = self._mfn[sel].copy()
        self._flags[sel] &= np.uint8(0xFF ^ VALID)
        self._mfn[sel] = -1
        self._node[sel] = -1
        self._num_valid -= int(sel.size)
        self.invalidations += int(sel.size)
        observer = self.observer
        if observer is not None:
            batch_hook = getattr(observer, "entries_invalidated", None)
            if batch_hook is not None:
                batch_hook(sel)
            else:
                for gpfn in sel.tolist():
                    observer.entry_invalidated(gpfn)
        return sel, mfns

    def remove_many(self, gpfns: _GpfnArray) -> np.ndarray:
        """Bulk :meth:`remove`; returns the mfns of entries that were valid.

        The returned mfns keep input order, exactly the non-None results
        a per-gpfn remove loop would have produced (domain teardown frees
        them wholesale).
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if self.sanitizer is not None or (
            gpfns.size and np.unique(gpfns).size != gpfns.size
        ):
            mfns = [
                mfn
                for mfn in (self.remove(gpfn) for gpfn in gpfns.tolist())
                if mfn is not None
            ]
            return np.asarray(mfns, dtype=np.int64)
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        sel = gpfns[in_range]
        flags = self._flags[sel]
        present = sel[(flags & PRESENT) != 0]
        valid = sel[(flags & VALID) != 0]
        mfns = self._mfn[valid].copy()
        self._num_entries -= int(present.size)
        self._num_valid -= int(valid.size)
        self._flags[present] = 0
        self._mfn[present] = -1
        self._node[present] = -1
        observer = self.observer
        if observer is not None and valid.size:
            batch_hook = getattr(observer, "entries_invalidated", None)
            if batch_hook is not None:
                batch_hook(valid)
            else:
                for gpfn in valid.tolist():
                    observer.entry_invalidated(gpfn)
        return mfns

    # ------------------------------------------------------------------
    # Lookup

    def lookup(self, gpfn: int) -> Optional[P2MEntryView]:
        """The raw entry for ``gpfn`` (None if never populated)."""
        if gpfn < 0 or gpfn >= self._mfn.size:
            return None
        if not self._flags[gpfn] & PRESENT:
            return None
        return P2MEntryView(self, gpfn)

    def translate(self, gpfn: int) -> int:
        """CPU-side translation; raises :class:`P2MError` on invalid entries.

        The hypervisor fault path catches that error and hands the fault to
        the domain's NUMA policy.
        """
        if gpfn < 0 or gpfn >= self._mfn.size or not self._flags[gpfn] & VALID:
            raise P2MError(f"invalid p2m entry for gpfn {gpfn:#x}")
        return int(self._mfn[gpfn])

    def translate_many(self, gpfns: _GpfnArray) -> np.ndarray:
        """Translate a whole gpfn array; raises on the first invalid one."""
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if gpfns.size == 0:
            return np.empty(0, dtype=np.int64)
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        valid = np.zeros(gpfns.shape, dtype=bool)
        valid[in_range] = (self._flags[gpfns[in_range]] & VALID) != 0
        if not valid.all():
            bad = int(gpfns[np.argmin(valid)])
            raise P2MError(f"invalid p2m entry for gpfn {bad:#x}")
        return self._mfn[gpfns].copy()

    def mfn_if_valid(self, gpfn: int) -> int:
        """The backing mfn, or -1 when the access would fault.

        The hypervisor fault path uses this instead of :meth:`lookup` to
        avoid materialising a view per guest access.
        """
        if gpfn < 0 or gpfn >= self._mfn.size or not self._flags[gpfn] & VALID:
            return -1
        return int(self._mfn[gpfn])

    def mfns_if_valid(self, gpfns: _GpfnArray) -> np.ndarray:
        """Batch :meth:`mfn_if_valid`: backing mfn per gpfn, -1 where faulting.

        Unlike :meth:`translate_many` this never raises — the batch init
        path uses it to split a segment into its translating and faulting
        subsets.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        out = np.full(gpfns.shape, -1, dtype=np.int64)
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        sel = gpfns[in_range]
        out[in_range] = np.where(
            (self._flags[sel] & VALID) != 0, self._mfn[sel], -1
        )
        return out

    def is_valid(self, gpfn: int) -> bool:
        """True if ``gpfn`` currently translates without faulting."""
        return bool(
            0 <= gpfn < self._mfn.size and self._flags[gpfn] & VALID
        )

    def is_writable(self, gpfn: int) -> bool:
        """True if a guest write to ``gpfn`` would not trap."""
        both = VALID | WRITABLE
        return bool(
            0 <= gpfn < self._mfn.size and (self._flags[gpfn] & both) == both
        )

    def nodes_of(self, gpfns: _GpfnArray) -> np.ndarray:
        """Node of each gpfn's backing frame (-1 where invalid).

        Requires :attr:`frames_per_node` to have been set by the
        hypervisor; the Carrefour decision path reads placements this way
        instead of translating page by page.
        """
        if self.frames_per_node is None:
            raise P2MError("nodes_of requires frames_per_node to be set")
        gpfns = np.asarray(gpfns, dtype=np.int64)
        nodes = np.full(gpfns.shape, -1, dtype=np.int32)
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        nodes[in_range] = self._node[gpfns[in_range]]
        return nodes

    # ------------------------------------------------------------------
    # Migration support (internal interface, paper section 4.1)

    def write_protect(self, gpfn: int) -> None:
        """Clear the writable bit so concurrent guest writes trap."""
        self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_write_protected(self.domain_id, gpfn)
        self._flags[gpfn] = int(self._flags[gpfn]) & ~WRITABLE

    def remap(self, gpfn: int, new_mfn: int) -> int:
        """Point a write-protected entry at ``new_mfn``; restore writability.

        Returns the old machine frame (to be freed by the caller).
        """
        self._require_valid(gpfn)
        flags = int(self._flags[gpfn])
        if flags & WRITABLE:
            raise P2MError("remap requires a write-protected entry")
        old = int(self._mfn[gpfn])
        if self.sanitizer is not None:
            self.sanitizer.entry_remapped(self.domain_id, gpfn, old, new_mfn)
        self._mfn[gpfn] = new_mfn
        self._sync_node(gpfn)
        self._flags[gpfn] = flags | WRITABLE
        self.migrations += 1
        if self.observer is not None:
            self.observer.entry_set(gpfn, new_mfn)
        return old

    def unprotect(self, gpfn: int) -> None:
        """Abort a migration: restore writability without remapping."""
        self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_unprotected(self.domain_id, gpfn)
        self._flags[gpfn] = int(self._flags[gpfn]) | WRITABLE

    def write_protect_many(self, gpfns: _GpfnArray) -> None:
        """Clear the writable bit of every ``gpfns`` entry in one operation.

        Pre-copy live migration protects a whole copy round's pages this
        way. Equivalent to a per-gpfn :meth:`write_protect` loop — all
        entries must be valid (raises on the first that is not), and
        sanitized tables or duplicate inputs delegate to the scalar loop
        so traps fire per-entry in input order.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if gpfns.size == 0:
            return
        if self.sanitizer is not None or np.unique(gpfns).size != gpfns.size:
            for gpfn in gpfns.tolist():
                self.write_protect(gpfn)
            return
        self._require_valid_many(gpfns)
        self._flags[gpfns] &= np.uint8(0xFF ^ WRITABLE)

    def unprotect_many(self, gpfns: _GpfnArray) -> None:
        """Restore writability of every ``gpfns`` entry in one operation.

        The stop-and-copy cutover releases the final round's protections
        with this. Same contract as :meth:`write_protect_many`: per-gpfn
        :meth:`unprotect` semantics, scalar fallback when sanitized or
        given duplicates.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        if gpfns.size == 0:
            return
        if self.sanitizer is not None or np.unique(gpfns).size != gpfns.size:
            for gpfn in gpfns.tolist():
                self.unprotect(gpfn)
            return
        self._require_valid_many(gpfns)
        self._flags[gpfns] |= np.uint8(WRITABLE)

    def writable_mask(self, gpfns: _GpfnArray) -> np.ndarray:
        """Boolean mask: True where the entry is valid *and* writable.

        Migration rounds use this to find pages the guest dirtied (the
        dirty-fault handler restores writability, so a writable page in a
        protected set is by definition dirty).
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        out = np.zeros(gpfns.shape, dtype=bool)
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        sel = gpfns[in_range]
        both = VALID | WRITABLE
        out[in_range] = (self._flags[sel] & both) == both
        return out

    # ------------------------------------------------------------------
    # Introspection

    def valid_entries(self) -> Iterator[Tuple[int, P2MEntryView]]:
        """Iterate (gpfn, entry) over valid entries."""
        for gpfn in np.nonzero(self._flags & VALID)[0].tolist():
            yield gpfn, P2MEntryView(self, gpfn)

    def valid_gpfns(self) -> np.ndarray:
        """All currently valid gpfns, ascending (a fresh array).

        Live migration's round 1 copies exactly this set — the domain's
        resident pages.
        """
        return np.nonzero((self._flags & VALID) != 0)[0].astype(np.int64)

    @property
    def faults_taken(self) -> int:
        """Hypervisor faults resolved against this table."""
        return self._faults_taken.value

    @faults_taken.setter
    def faults_taken(self, value: int) -> None:
        self._faults_taken.value = value

    @property
    def invalidations(self) -> int:
        """Entries invalidated (released pages, first-touch traps)."""
        return self._invalidations.value

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._invalidations.value = value

    @property
    def migrations(self) -> int:
        """Pages remapped by the migration protocol."""
        return self._migrations.value

    @migrations.setter
    def migrations(self, value: int) -> None:
        self._migrations.value = value

    @property
    def num_entries(self) -> int:
        """Total entries, valid or not (maintained, not scanned)."""
        return self._num_entries

    @property
    def num_valid(self) -> int:
        """Valid (translatable) entries (maintained, not scanned)."""
        return self._num_valid

    def _require_valid(self, gpfn: int) -> None:
        if gpfn < 0 or gpfn >= self._mfn.size or not self._flags[gpfn] & VALID:
            raise P2MError(f"gpfn {gpfn:#x} has no valid entry")

    def _require_valid_many(self, gpfns: np.ndarray) -> None:
        in_range = (gpfns >= 0) & (gpfns < self._mfn.size)
        valid = np.zeros(gpfns.shape, dtype=bool)
        valid[in_range] = (self._flags[gpfns[in_range]] & VALID) != 0
        if not valid.all():
            bad = int(gpfns[np.argmin(valid)])
            raise P2MError(f"gpfn {bad:#x} has no valid entry")
