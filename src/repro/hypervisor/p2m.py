"""The hypervisor page table (p2m): guest-physical -> machine mapping.

Xen isolates each virtual machine's memory with a per-domain hardware page
table mapping the domain's *physical* (guest-physical) frames to *machine*
frames (paper section 2.1). This table is the lever of every NUMA policy in
the paper (section 4.1):

* a policy *places* a guest page on a node by mapping its gpfn to an mfn of
  that node;
* first-touch *traps* the first access to a page by leaving/making the
  entry invalid, so the access raises a hypervisor page fault;
* Carrefour *migrates* a page by write-protecting the entry, copying the
  frame, then remapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import P2MError


@dataclass
class P2MEntry:
    """One hypervisor page table entry.

    Attributes:
        mfn: backing machine frame.
        valid: invalid entries fault on access (first-touch trap).
        writable: cleared during migration to freeze the page content.
    """

    mfn: int
    valid: bool = True
    writable: bool = True


class P2MTable:
    """Per-domain guest-physical to machine frame mapping.

    The table is sparse: a gpfn without an entry has never been populated.
    An entry can also exist but be *invalid* — the distinction matters for
    first-touch, which invalidates entries of released pages while the
    guest still considers those gpfns part of its physical memory.
    """

    def __init__(self, domain_id: int):
        self.domain_id = domain_id
        self._entries: Dict[int, P2MEntry] = {}
        # Statistics used by the experiments.
        self.faults_taken = 0
        self.invalidations = 0
        self.migrations = 0
        #: Optional observer notified of mapping changes; the simulation
        #: engine uses it to keep page->node placement views in sync.
        #: Must provide ``entry_set(gpfn, mfn)`` and ``entry_invalidated(gpfn)``.
        self.observer: Optional[object] = None
        #: Optional :class:`repro.lint.sanitizer.P2MSanitizer`; checked
        #: before every mutation so a trapped violation leaves the table
        #: unchanged. Attached by the hypervisor when sanitizing.
        self.sanitizer: Optional[object] = None

    # ------------------------------------------------------------------
    # Population

    def set_entry(self, gpfn: int, mfn: int, writable: bool = True) -> None:
        """Map ``gpfn`` to ``mfn`` (creating or revalidating the entry)."""
        if gpfn < 0 or mfn < 0:
            raise P2MError("frame numbers must be non-negative")
        if self.sanitizer is not None:
            self.sanitizer.entry_set(self.domain_id, gpfn, mfn)
        self._entries[gpfn] = P2MEntry(mfn=mfn, valid=True, writable=writable)
        if self.observer is not None:
            self.observer.entry_set(gpfn, mfn)

    def invalidate(self, gpfn: int) -> Optional[int]:
        """Invalidate the entry for ``gpfn``; next access faults.

        Returns the machine frame that was backing the page (so the caller
        can return it to the heap), or None if the entry was absent or
        already invalid.
        """
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            return None
        entry.valid = False
        self.invalidations += 1
        mfn, entry.mfn = entry.mfn, -1
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return mfn

    def remove(self, gpfn: int) -> Optional[int]:
        """Drop the entry entirely (domain teardown). Returns the mfn if valid."""
        entry = self._entries.pop(gpfn, None)
        if entry is None or not entry.valid:
            return None
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return entry.mfn

    # ------------------------------------------------------------------
    # Lookup

    def lookup(self, gpfn: int) -> Optional[P2MEntry]:
        """The raw entry for ``gpfn`` (None if never populated)."""
        return self._entries.get(gpfn)

    def translate(self, gpfn: int) -> int:
        """CPU-side translation; raises :class:`P2MError` on invalid entries.

        The hypervisor fault path catches that error and hands the fault to
        the domain's NUMA policy.
        """
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"invalid p2m entry for gpfn {gpfn:#x}")
        return entry.mfn

    def is_valid(self, gpfn: int) -> bool:
        """True if ``gpfn`` currently translates without faulting."""
        entry = self._entries.get(gpfn)
        return entry is not None and entry.valid

    # ------------------------------------------------------------------
    # Migration support (internal interface, paper section 4.1)

    def write_protect(self, gpfn: int) -> None:
        """Clear the writable bit so concurrent guest writes trap."""
        entry = self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_write_protected(self.domain_id, gpfn)
        entry.writable = False

    def remap(self, gpfn: int, new_mfn: int) -> int:
        """Point a write-protected entry at ``new_mfn``; restore writability.

        Returns the old machine frame (to be freed by the caller).
        """
        entry = self._require_valid(gpfn)
        if entry.writable:
            raise P2MError("remap requires a write-protected entry")
        if self.sanitizer is not None:
            self.sanitizer.entry_remapped(
                self.domain_id, gpfn, entry.mfn, new_mfn
            )
        old = entry.mfn
        entry.mfn = new_mfn
        entry.writable = True
        self.migrations += 1
        if self.observer is not None:
            self.observer.entry_set(gpfn, new_mfn)
        return old

    def unprotect(self, gpfn: int) -> None:
        """Abort a migration: restore writability without remapping."""
        entry = self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_unprotected(self.domain_id, gpfn)
        entry.writable = True

    # ------------------------------------------------------------------
    # Introspection

    def valid_entries(self) -> Iterator[Tuple[int, P2MEntry]]:
        """Iterate (gpfn, entry) over valid entries."""
        return ((g, e) for g, e in self._entries.items() if e.valid)

    @property
    def num_entries(self) -> int:
        """Total entries, valid or not."""
        return len(self._entries)

    @property
    def num_valid(self) -> int:
        """Valid (translatable) entries."""
        return sum(1 for e in self._entries.values() if e.valid)

    def _require_valid(self, gpfn: int) -> P2MEntry:
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"gpfn {gpfn:#x} has no valid entry")
        return entry
