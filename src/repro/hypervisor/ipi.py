"""Virtualised inter-processor interrupt (IPI) cost model.

Figure 5 of the paper: sending an IPI takes ~0.9 us in native mode but
~10.9 us in guest mode, because the send traps into the hypervisor, the
target vCPU must be located and kicked, and both sides pay guest
exits/entries. Applications that block frequently (condition variables,
futexes, network waits) let their CPUs go idle; waking them sends an IPI,
so a high intentional context-switch rate multiplied by the 12x IPI cost is
a large virtualisation overhead (Table 2 column "context switches").

The component decomposition below is a model (the figure's exact labels are
not machine-readable); the totals are the paper's measured 0.9/10.9 us and
the guest breakdown follows its narrative: trap, route, kick, re-enter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SchedulerError


@dataclass(frozen=True)
class IpiComponent:
    """One step of IPI delivery with its cost in seconds."""

    name: str
    seconds: float


#: Native-mode IPI delivery: write ICR, interconnect delivery, handler entry.
NATIVE_COMPONENTS: Tuple[IpiComponent, ...] = (
    IpiComponent("icr_write", 0.2e-6),
    IpiComponent("delivery", 0.3e-6),
    IpiComponent("handler_entry", 0.4e-6),
)

#: Guest-mode IPI delivery: every arrow in the native path grows a guest
#: exit/entry pair and a trip through the hypervisor's virtual APIC.
GUEST_COMPONENTS: Tuple[IpiComponent, ...] = (
    IpiComponent("sender_vmexit", 2.4e-6),
    IpiComponent("virtual_apic_emulation", 2.1e-6),
    IpiComponent("target_vcpu_lookup", 1.6e-6),
    IpiComponent("target_kick_and_wakeup", 2.8e-6),
    IpiComponent("vmentry_and_delivery", 2.0e-6),
)


class IpiModel:
    """IPI send cost in native and guest mode.

    The defaults reproduce Figure 5 (0.9 us native, 10.9 us guest).
    """

    def __init__(
        self,
        native: Tuple[IpiComponent, ...] = NATIVE_COMPONENTS,
        guest: Tuple[IpiComponent, ...] = GUEST_COMPONENTS,
    ):
        self._components = {"native": native, "guest": guest}

    def cost(self, mode: str) -> float:
        """Total IPI send cost in seconds for ``mode`` (native/guest)."""
        return sum(c.seconds for c in self.components(mode))

    def components(self, mode: str) -> Tuple[IpiComponent, ...]:
        """The per-step decomposition for ``mode``."""
        try:
            return self._components[mode]
        except KeyError:
            raise SchedulerError(f"unknown IPI mode {mode!r}") from None

    def repartition(self, mode: str) -> Dict[str, float]:
        """Fraction of total cost per component (Figure 5's bar layout)."""
        total = self.cost(mode)
        return {c.name: c.seconds / total for c in self.components(mode)}

    def wakeup_overhead(self, context_switches_per_s: float, mode: str) -> float:
        """Seconds of IPI overhead per second of run for a switch rate.

        Each intentional context switch that idles the CPU costs one IPI to
        wake the sleeper (paper section 5.3.2).
        """
        return context_switches_per_s * self.cost(mode)
