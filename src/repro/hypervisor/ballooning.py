"""The ballooning driver — and why it cannot drive first-touch.

Section 4.2.3: "We might want to use the ballooning driver to get that
knowledge [of page releases]. … However, when a guest operating system
releases a page through the ballooning driver, the guest can no longer
use that page. In our case, the guest operating system has to be able to
reallocate the free page to a new process at any time, which precludes
using the ballooning driver."

This module implements a faithful balloon: inflating it *surrenders*
guest pages to the hypervisor (their frames go back to the heap and the
guest loses the right to touch them); deflating asks pages back. The
integration test shows exactly the mismatch the paper describes — a
ballooned page cannot be handed to a new process without first deflating
through the hypervisor, while the page-event queue keeps the page usable
the whole time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.errors import HypercallError
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain


@dataclass
class BalloonStats:
    """Counters of one balloon driver."""

    inflations: int = 0
    deflations: int = 0
    pages_surrendered: int = 0
    pages_returned: int = 0


class BalloonDriver:
    """Per-domain memory balloon.

    Args:
        domain: the guest this balloon lives in.
        allocator: the hypervisor heap (surrendered frames return there).
    """

    def __init__(self, domain: Domain, allocator: XenHeapAllocator):
        self.domain = domain
        self.allocator = allocator
        self._ballooned: Set[int] = set()
        self.stats = BalloonStats()

    @property
    def ballooned_pages(self) -> int:
        """Pages currently surrendered to the hypervisor."""
        return len(self._ballooned)

    def is_ballooned(self, gpfn: int) -> bool:
        """True when the guest may not use ``gpfn``."""
        return gpfn in self._ballooned

    # ------------------------------------------------------------------

    def inflate(self, gpfns: List[int]) -> int:
        """Surrender pages to the hypervisor.

        The p2m entries are invalidated and the frames freed — the
        hypervisor may give them to another domain. From here on the
        guest MUST NOT touch these gpfns: that is the crucial difference
        from the page-event queue, which merely *informs* the hypervisor
        while the guest keeps the right to reallocate.
        """
        surrendered = 0
        for gpfn in gpfns:
            if gpfn in self._ballooned:
                continue
            mfn = self.domain.p2m.invalidate(gpfn)
            if mfn is not None:
                self.allocator.free_page(mfn)
            self._ballooned.add(gpfn)
            surrendered += 1
        self.stats.inflations += 1
        self.stats.pages_surrendered += surrendered
        return surrendered

    def deflate(self, gpfns: List[int]) -> int:
        """Ask pages back from the hypervisor.

        Each page needs a fresh frame (its old one may belong to someone
        else by now) — a hypervisor round trip the guest must take
        *before* it can reallocate the page to a process.
        """
        returned = 0
        for gpfn in gpfns:
            if gpfn not in self._ballooned:
                continue
            node = self.domain.home_nodes[0]
            mfn = self.allocator.alloc_page_on(node)
            self.domain.p2m.set_entry(gpfn, mfn)
            self._ballooned.discard(gpfn)
            returned += 1
        self.stats.deflations += 1
        self.stats.pages_returned += returned
        return returned

    def guest_use(self, gpfn: int) -> None:
        """The guest tries to give ``gpfn`` to a process.

        Raises:
            HypercallError: the page is ballooned — this is the paper's
                argument in one exception: the guest cannot reallocate a
                ballooned page "at any time".
        """
        if gpfn in self._ballooned:
            raise HypercallError(
                f"guest page {gpfn:#x} is ballooned away; deflate first "
                "(this is why first-touch cannot ride the balloon driver)"
            )
