"""vCPU scheduler: pinning and fair time-sharing of physical CPUs.

Every experiment in the paper pins vCPUs to pCPUs to remove scheduler noise
(sections 5.4.1, 5.4.2): with a single VM each pCPU runs one vCPU; in the
consolidated 2x48-vCPU setup each pCPU runs exactly two vCPUs, one per
domain, and Xen's credit scheduler shares it fairly. The scheduler exposes
the per-vCPU *CPU share*, which the simulation engine uses to scale thread
progress, and validates placement requests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulerError
from repro.hypervisor.domain import Domain, VCpu

VcpuKey = Tuple[int, int]  # (domain_id, vcpu_id)


class Scheduler:
    """Tracks which vCPUs run on which physical CPUs.

    Args:
        num_pcpus: physical CPU count of the machine.
    """

    def __init__(self, num_pcpus: int):
        self.num_pcpus = num_pcpus
        self._placement: Dict[VcpuKey, int] = {}
        self._runqueues: Dict[int, List[VcpuKey]] = defaultdict(list)
        #: Bumped on every placement change. CPU shares can only change
        #: when a runqueue does, so caches keyed on (scheduler, version)
        #: — the multi-run gather cache — stay exact without re-reading
        #: every thread's share each epoch.
        self.version = 0

    # ------------------------------------------------------------------
    # Placement

    def pin(self, vcpu: VCpu, pcpu: int) -> None:
        """Hard-pin ``vcpu`` to ``pcpu`` (moving it if already placed)."""
        if not 0 <= pcpu < self.num_pcpus:
            raise SchedulerError(f"pcpu {pcpu} out of range")
        self.remove(vcpu)
        vcpu.pinned_pcpu = pcpu
        self._placement[vcpu.key] = pcpu
        self._runqueues[pcpu].append(vcpu.key)
        self.version += 1

    def pin_domain(self, domain: Domain, pcpus: Sequence[int]) -> None:
        """Pin a domain's vCPUs 1:1 onto ``pcpus``."""
        if len(pcpus) != domain.num_vcpus:
            raise SchedulerError(
                f"domain {domain.name} has {domain.num_vcpus} vCPUs, "
                f"got {len(pcpus)} pCPUs"
            )
        for vcpu, pcpu in zip(domain.vcpus, pcpus):
            self.pin(vcpu, pcpu)

    def remove(self, vcpu: VCpu) -> None:
        """Take ``vcpu`` off its pCPU (no-op if unplaced)."""
        pcpu = self._placement.pop(vcpu.key, None)
        if pcpu is not None:
            self._runqueues[pcpu].remove(vcpu.key)
            self.version += 1

    def remove_domain(self, domain: Domain) -> None:
        """Unplace every vCPU of ``domain``."""
        for vcpu in domain.vcpus:
            self.remove(vcpu)

    # ------------------------------------------------------------------
    # Queries

    def pcpu_of(self, vcpu: VCpu) -> int:
        """The physical CPU currently hosting ``vcpu``."""
        try:
            return self._placement[vcpu.key]
        except KeyError:
            raise SchedulerError(f"vcpu {vcpu.key} is not placed") from None

    def runqueue(self, pcpu: int) -> Tuple[VcpuKey, ...]:
        """vCPUs sharing physical CPU ``pcpu``."""
        return tuple(self._runqueues.get(pcpu, ()))

    def cpu_share(self, vcpu: VCpu) -> float:
        """Fraction of its pCPU this vCPU receives (credit fair share)."""
        pcpu = self.pcpu_of(vcpu)
        sharers = len(self._runqueues[pcpu])
        return 1.0 / sharers if sharers else 0.0

    def occupied_pcpus(self) -> Tuple[int, ...]:
        """Physical CPUs with at least one vCPU."""
        return tuple(sorted(p for p, q in self._runqueues.items() if q))

    def max_sharers(self) -> int:
        """Largest runqueue length (1 = dedicated CPUs everywhere)."""
        return max((len(q) for q in self._runqueues.values()), default=0)
