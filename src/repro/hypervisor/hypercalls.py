"""Hypercall numbers, dispatch table and cost model.

The paper's external interface adds two hypercalls (section 4.2):

* ``NUMA_SET_POLICY`` — select the NUMA policy of the calling domain
  (switch to first-touch, toggle Carrefour);
* ``NUMA_PAGE_EVENTS`` — hand the hypervisor a batched queue of page
  allocation/release events so first-touch can invalidate released pages.

A third hypercall, ``CARREFOUR_CONTROL``, carries the Carrefour user
component's commands from dom0 into the in-hypervisor system component
(section 4.3: the hypercall is trapped by dom0's Linux and forwarded).

The cost model captures why batching matters (section 4.2.3): each
hypercall pays a fixed guest-exit cost, and the issuing core holds the page
queue lock for the whole call, so concurrent cores serialise behind it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.errors import HypercallError


class Hypercall(enum.Enum):
    """Hypercall numbers understood by this hypervisor."""

    #: Select/switch the NUMA policy of a whole domain.
    NUMA_SET_POLICY = 40
    #: Flush a batched queue of page (alloc/release) events.
    NUMA_PAGE_EVENTS = 41
    #: Carrefour user-component commands (from dom0).
    CARREFOUR_CONTROL = 42
    #: Measurement aid: does nothing, costs like a real hypercall.
    EMPTY = 43


#: Handler signature: (domain_id, vcpu_id, args) -> result.
Handler = Callable[[int, int, Any], Any]


@dataclass(frozen=True)
class HypercallCostModel:
    """Timing of a hypercall, calibrated from the paper's observations.

    Attributes:
        base_seconds: guest exit + entry + dispatch for an empty call.
        per_event_seconds: processing cost per page event in a flushed
            queue. The paper measures that 87.5% of a flush is spent
            invalidating pages and 12.5% sending the queue (section 4.2.4);
            with the default batch of 64 events the model reproduces that
            split: 64 * per_event ≈ 7 * base.
    """

    base_seconds: float = 1.0e-6
    per_event_seconds: float = 0.109e-6

    def flush_cost(self, num_events: int) -> float:
        """Duration of one NUMA_PAGE_EVENTS call carrying ``num_events``."""
        return self.base_seconds + num_events * self.per_event_seconds

    def invalidation_share(self, num_events: int) -> float:
        """Fraction of the flush spent processing events (vs sending)."""
        total = self.flush_cost(num_events)
        return (num_events * self.per_event_seconds) / total if total else 0.0


class HypercallTable:
    """Registry and dispatcher for hypercall handlers."""

    def __init__(self, costs: HypercallCostModel = HypercallCostModel()):
        self._handlers: Dict[Hypercall, Handler] = {}
        self.costs = costs
        #: (count, total_seconds) per hypercall, for the experiments.
        self.stats: Dict[Hypercall, Tuple[int, float]] = {
            call: (0, 0.0) for call in Hypercall
        }
        self._default_empty: Handler = lambda dom, vcpu, args: None
        self._handlers[Hypercall.EMPTY] = self._default_empty

    def register(self, call: Hypercall, handler: Handler) -> None:
        """Install ``handler`` for ``call`` (one handler per number).

        The built-in EMPTY measurement stub may be replaced once; any
        further registration — EMPTY included — raises, so a component
        cannot silently overwrite another's handler.
        """
        current = self._handlers.get(call)
        replacing_default_empty = (
            call is Hypercall.EMPTY and current is self._default_empty
        )
        if current is not None and not replacing_default_empty:
            raise HypercallError(f"handler already registered for {call.name}")
        self._handlers[call] = handler

    def dispatch(self, call: Hypercall, domain_id: int, vcpu_id: int, args: Any = None) -> Any:
        """Execute a hypercall; returns the handler's result.

        A handler that raises still cost the guest an exit: at least
        ``base_seconds`` is charged to ``stats`` before the exception
        propagates (the batching experiment reads this accounting).

        Raises:
            HypercallError: unknown hypercall number.
        """
        handler = self._handlers.get(call)
        if handler is None:
            raise HypercallError(f"no handler for hypercall {call.name}")
        cost = self.costs.base_seconds
        try:
            result = handler(domain_id, vcpu_id, args)
            cost = self._cost_of(call, args)
        finally:
            count, seconds = self.stats[call]
            self.stats[call] = (count + 1, seconds + cost)
        return result

    def cost_of_call(self, call: Hypercall, args: Any = None) -> float:
        """Predicted duration of one call (used by the engine's time model)."""
        return self._cost_of(call, args)

    def _cost_of(self, call: Hypercall, args: Any) -> float:
        if call is Hypercall.NUMA_PAGE_EVENTS and args is not None:
            try:
                return self.costs.flush_cost(len(args))
            except TypeError:
                return self.costs.flush_cost(0)
        return self.costs.base_seconds

    def reset_stats(self) -> None:
        """Clear accounting."""
        for call in Hypercall:
            self.stats[call] = (0, 0.0)
