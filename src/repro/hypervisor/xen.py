"""The hypervisor facade: domain lifecycle, features, wiring of all parts.

Two hypervisor configurations appear in the evaluation:

* **Xen** — stock behaviour: para-virtualised I/O through dom0, blocking
  guest synchronisation paying virtualised IPIs, round-1G placement;
* **Xen+** — the improved baseline of section 5.3: PCI passthrough with
  the IOMMU for I/O (except when first-touch is active, which requires
  the IOMMU off — section 4.4.1), and MCS spin locks replacing blocking
  pthread primitives for the apps that benefit.

``XenFeatures`` captures the difference so experiments toggle features the
way the paper does rather than forking the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.core.interface import InternalInterface
from repro.core.policies.base import PolicyName, PolicySpec
from repro.core.policy_manager import PolicyManager
from repro.errors import DomainError, P2MError, PolicyError
from repro.hardware.machine import Machine
from repro.hypervisor.allocator import XenHeapAllocator, choose_home_nodes
from repro.hypervisor.domain import Domain
from repro.hypervisor.faults import FaultHandler
from repro.hypervisor.hypercalls import HypercallCostModel, HypercallTable
from repro.hypervisor.ipi import IpiModel
from repro.hypervisor.scheduler import Scheduler
from repro.lint import sanitizer as p2m_sanitizer


@dataclass(frozen=True)
class XenFeatures:
    """Feature set distinguishing Xen from Xen+.

    Attributes:
        name: label used in reports ("Xen" / "Xen+").
        pci_passthrough: use the IOMMU + PCI passthrough driver for domU
            I/O when possible (Xen+).
        mcs_locks: replace blocking pthread primitives with MCS spin loops
            in the guest for the apps that thrash on virtualised IPIs
            (Xen+, single-VM runs of facesim/streamcluster).
    """

    name: str = "Xen"
    pci_passthrough: bool = False
    mcs_locks: bool = False


#: Stock Xen 4.5 behaviour.
XEN = XenFeatures(name="Xen")
#: The paper's improved baseline.
XEN_PLUS = XenFeatures(name="Xen+", pci_passthrough=True, mcs_locks=True)

#: Guest-physical pages reserved for dom0 (simulated pages).
DOM0_MEMORY_PAGES = 256


class Hypervisor:
    """A booted hypervisor on a machine, with dom0 already created.

    Args:
        machine: the hardware.
        features: Xen vs Xen+ toggles.
        hypercall_costs: timing model of guest exits.
    """

    def __init__(
        self,
        machine: Machine,
        features: XenFeatures = XEN,
        hypercall_costs: Optional[HypercallCostModel] = None,
    ):
        self.machine = machine
        self.features = features
        self.config: SimConfig = machine.config
        self.scheduler = Scheduler(machine.num_cpus)
        self.allocator = XenHeapAllocator(machine, machine.config)
        self.hypercalls = HypercallTable(hypercall_costs or HypercallCostModel())
        self.internal = InternalInterface(machine, self.allocator)
        self.fault_handler = FaultHandler(self.allocator)
        self.policy_manager = PolicyManager(self.internal, self.hypercalls)
        self.ipi = IpiModel()
        self.domains: Dict[int, Domain] = {}
        self._next_domid = 1
        #: Per-domain write-protection fault handlers. Live migration
        #: registers its dirty logger here; the handler is invoked (with
        #: the faulting gpfn) after the fault is accounted, and is
        #: expected to unprotect the entry so the write can complete.
        self._wp_handlers: Dict[int, object] = {}
        self.sanitizer: Optional[p2m_sanitizer.P2MSanitizer] = None
        if machine.config.sanitize_p2m or p2m_sanitizer.is_enabled():
            self.sanitizer = p2m_sanitizer.P2MSanitizer()
            machine.memory.sanitizer = self.sanitizer
        self._dom0 = self._create_dom0()

    # ------------------------------------------------------------------
    # Domain lifecycle

    @property
    def dom0(self) -> Domain:
        """The privileged management/I/O domain, pinned on node 0."""
        return self._dom0

    def create_domain(
        self,
        name: str,
        num_vcpus: int,
        memory_pages: int,
        home_nodes: Optional[Sequence[int]] = None,
        boot_policy: Optional[PolicySpec] = None,
        pin_pcpus: Optional[Sequence[int]] = None,
    ) -> Domain:
        """Create, place, populate and pin a domU.

        Args:
            name: label.
            num_vcpus: vCPU count.
            memory_pages: guest-physical size in simulated pages.
            home_nodes: explicit NUMA placement; computed greedily like
                Xen's soft affinity when omitted.
            boot_policy: defaults to round-4K (section 4.2.1).
            pin_pcpus: 1:1 vCPU pinning targets; defaults to the CPUs of
                the home nodes in order.
        """
        reserved = [
            self.scheduler.pcpu_of(v)
            for d in self.domains.values()
            for v in d.vcpus
            if v.pinned_pcpu is not None
        ]
        nodes = choose_home_nodes(
            self.machine, num_vcpus, memory_pages, reserved, home_nodes
        )
        domain = Domain(
            domain_id=self._next_domid,
            name=name,
            num_vcpus=num_vcpus,
            memory_pages=memory_pages,
            home_nodes=nodes,
        )
        self._next_domid += 1
        domain.p2m.frames_per_node = self.machine.memory.frames_per_node
        if self.sanitizer is not None:
            domain.p2m.sanitizer = self.sanitizer
        self.policy_manager.boot_domain(domain, boot_policy)
        if pin_pcpus is None:
            pin_pcpus = self._default_pinning(domain)
        self.scheduler.pin_domain(domain, pin_pcpus)
        self.domains[domain.domain_id] = domain
        return domain

    def destroy_domain(self, domain: Domain) -> None:
        """Tear a domU down, releasing CPUs, frames and counters."""
        if domain.is_dom0:
            raise PolicyError("cannot destroy dom0")
        self.scheduler.remove_domain(domain)
        self.policy_manager.forget_domain(domain)
        self.allocator.depopulate(domain)
        self.domains.pop(domain.domain_id, None)

    # ------------------------------------------------------------------
    # Policy plumbing

    def set_policy(
        self,
        domain: Domain,
        base: Optional[PolicyName] = None,
        carrefour: Optional[bool] = None,
    ):
        """Administrator-side policy switch (goes through the hypercall)."""
        from repro.hypervisor.hypercalls import Hypercall

        return self.hypercalls.dispatch(
            Hypercall.NUMA_SET_POLICY,
            domain.domain_id,
            0,
            {"policy": base.value if base else None, "carrefour": carrefour},
        )

    def io_mode(self, domain: Domain) -> str:
        """The I/O path a domU gets: "passthrough" or "paravirt".

        PCI passthrough needs the IOMMU, and the IOMMU cannot coexist with
        a policy that invalidates p2m entries (section 4.4.1) — so
        activating first-touch silently falls back to the para-virtualised
        path, exactly as the paper's evaluation does (section 5.3.1).
        """
        if not self.features.pci_passthrough:
            return "paravirt"
        if not self.machine.iommu.enabled:
            return "paravirt"
        policy = domain.numa_policy
        if policy is not None and policy.requires_iommu_disabled:
            return "paravirt"
        return "passthrough"

    # ------------------------------------------------------------------
    # Access path used by the simulation engine

    def guest_access(self, domain: Domain, vcpu_id: int, gpfn: int) -> int:
        """Resolve one guest memory access to a machine frame.

        Valid entries translate for free; invalid ones take the hypervisor
        fault path and land where the domain's policy decides.
        """
        vcpu = domain.vcpus[vcpu_id]
        pcpu = self.scheduler.pcpu_of(vcpu)
        node = self.machine.topology.node_of_cpu(pcpu)
        return self.fault_handler.on_access(domain, vcpu_id, gpfn, node)

    def guest_faults_many(
        self, domain: Domain, vcpu_id: int, gpfns
    ) -> Optional["np.ndarray"]:
        """Fault a whole gpfn array in for one vCPU.

        The batch counterpart of taking :meth:`guest_access` faults page
        by page: every gpfn must currently be invalid (the caller — the
        first-touch init path — guarantees it). Returns the mfn array, or
        None when the policy needs per-page fault decisions.
        """
        vcpu = domain.vcpus[vcpu_id]
        pcpu = self.scheduler.pcpu_of(vcpu)
        node = self.machine.topology.node_of_cpu(pcpu)
        return self.fault_handler.handle_faults(domain, vcpu_id, gpfns, node)

    def vcpu_node(self, domain: Domain, vcpu_id: int) -> int:
        """NUMA node currently hosting a vCPU."""
        pcpu = self.scheduler.pcpu_of(domain.vcpus[vcpu_id])
        return self.machine.topology.node_of_cpu(pcpu)

    # ------------------------------------------------------------------
    # Write path and migration plumbing

    def pause_domain(self, domain: Domain) -> None:
        """Freeze the domain's vCPUs (stop-and-copy window)."""
        domain.paused = True

    def resume_domain(self, domain: Domain) -> None:
        """Let the domain's vCPUs run again."""
        domain.paused = False

    def set_write_fault_handler(self, domain: Domain, handler) -> None:
        """Route the domain's write-protection faults to ``handler(gpfn)``.

        Live migration's dirty logger: called after the fault is
        accounted through :meth:`FaultHandler.on_write_protected`; the
        handler must restore writability (``unprotect``) so the guest's
        write completes — the page is thereby *dirty* for the next round.
        """
        self._wp_handlers[domain.domain_id] = handler

    def clear_write_fault_handler(self, domain: Domain) -> None:
        self._wp_handlers.pop(domain.domain_id, None)

    def guest_write(
        self, domain: Domain, vcpu_id: int, gpfn: int, stamp: int
    ) -> int:
        """Resolve one guest memory *write*; returns the backing mfn.

        Like :meth:`guest_access` plus the content model: the page's
        write stamp is updated. A write to a write-protected entry traps
        — the fault is accounted and handed to the domain's registered
        write-fault handler, which logs the page dirty and unprotects it.
        """
        if domain.paused:
            raise DomainError(
                f"domain {domain.domain_id} is paused; its vCPUs cannot write"
            )
        mfn = self.guest_access(domain, vcpu_id, gpfn)
        if not domain.p2m.is_writable(gpfn):
            self.fault_handler.on_write_protected(domain, gpfn)
            handler = self._wp_handlers.get(domain.domain_id)
            if handler is None:
                raise P2MError(
                    f"write fault on domain {domain.domain_id} gpfn "
                    f"{gpfn:#x} with no write-fault handler registered"
                )
            handler(gpfn)
            if not domain.p2m.is_writable(gpfn):
                raise P2MError(
                    f"write-fault handler left domain {domain.domain_id} "
                    f"gpfn {gpfn:#x} write-protected; the guest write "
                    f"cannot complete"
                )
        domain.write_stamp(gpfn, stamp)
        return mfn

    # ------------------------------------------------------------------
    # Internals

    def _create_dom0(self) -> Domain:
        """Boot dom0 pinned to node 0 (paper section 5.2).

        dom0 is mostly idle in the experiments; it exists for the I/O path
        and as the home of Carrefour's user component, so it is not run
        through the scheduler's share accounting.
        """
        dom0 = Domain(
            domain_id=0,
            name="dom0",
            num_vcpus=self.machine.topology.cpus_per_node,
            memory_pages=min(
                DOM0_MEMORY_PAGES, self.machine.memory.frames_per_node // 4
            ),
            home_nodes=(0,),
        )
        dom0.p2m.frames_per_node = self.machine.memory.frames_per_node
        if self.sanitizer is not None:
            dom0.p2m.sanitizer = self.sanitizer
        self.policy_manager.boot_domain(
            dom0, PolicySpec(PolicyName.ROUND_4K)
        )
        self.domains[0] = dom0
        return dom0

    def _default_pinning(self, domain: Domain) -> List[int]:
        """Pin vCPUs onto the home nodes' CPUs, node by node."""
        cpus: List[int] = []
        for node in domain.home_nodes:
            cpus.extend(self.machine.topology.cpus_of_node(node))
        if len(cpus) < domain.num_vcpus:
            # Consolidated setups (2 x 48 vCPUs) wrap around.
            while len(cpus) < domain.num_vcpus:
                cpus.extend(cpus[: domain.num_vcpus - len(cpus)])
        return cpus[: domain.num_vcpus]
