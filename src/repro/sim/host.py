"""A host: one machine with one booted hypervisor, as a replicable value.

Before the cluster work, "the machine and its Xen instance" existed only
as locals of ``XenEnvironment.setup`` — an implicit singleton of the one
world being built. :class:`Host` reifies that pair so N identical hosts
can coexist in one process (each with its own heap, scheduler, fault
handler and sanitizer) and so live migration can talk about a *source*
host and a *destination* host as ordinary values.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SimConfig
from repro.hardware.machine import Machine
from repro.hardware.presets import amd48
from repro.hypervisor.xen import Hypervisor, XenFeatures, XEN_PLUS


class Host:
    """One machine + hypervisor pair, identified inside a cluster.

    Args:
        host_id: index inside the owning cluster (0 for single-host runs).
        machine: the hardware.
        hypervisor: the booted Xen instance on that hardware.
    """

    def __init__(self, host_id: int, machine: Machine, hypervisor: Hypervisor):
        if hypervisor.machine is not machine:
            raise ValueError("hypervisor must be booted on the host's machine")
        self.host_id = host_id
        self.machine = machine
        self.hypervisor = hypervisor

    @classmethod
    def create(
        cls,
        host_id: int = 0,
        config: Optional[SimConfig] = None,
        features: XenFeatures = XEN_PLUS,
        machine_factory: Optional[Callable[[], Machine]] = None,
    ) -> "Host":
        """Boot a fresh host: build the machine, then the hypervisor on it."""
        if machine_factory is not None:
            machine = machine_factory()
        else:
            machine = amd48(config=config or SimConfig())
        return cls(
            host_id=host_id,
            machine=machine,
            hypervisor=Hypervisor(machine, features=features),
        )

    @property
    def config(self) -> SimConfig:
        return self.machine.config

    def free_frames_by_node(self):
        """Per-node free frame counts (the placement scheduler's input)."""
        memory = self.machine.memory
        return [
            memory.free_frames_on(node)
            for node in range(self.machine.num_nodes)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Host({self.host_id}, {self.machine.num_nodes} nodes, "
            f"{len(self.hypervisor.domains) - 1} domUs)"
        )
