"""One running application instance inside the simulation.

An :class:`AppRun` owns the runtime state of one application: its threads,
its segments with their placement views, its work counters and its churn
state. The environment supplies a *context* (duck-typed, see
:class:`RunContextProtocol`) that performs the actual memory mechanics —
touching a page goes through the real guest fault path and, in Xen mode,
through the real hypervisor page-fault path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimConfig
from repro.core.policies.base import EpochObservation
from repro.hardware.counters import HotPageSample
from repro.sim.calibration import OpModel
from repro.sim.placement import SegmentPlacement
from repro.sim.results import EpochRecord, RunResult
from repro.workloads.app import AppSpec, SegmentDef

#: Fraction of a shared segment's pages forming the "hot subset".
HOT_SUBSET_FRACTION = 0.02
#: Minimum hot-subset size (pages). At coarse page scales a tiny subset
#: cannot round-robin evenly over 8 nodes, which would fake imbalance
#: that fine-grained 4 KiB placement does not have.
HOT_SUBSET_MIN_PAGES = 16
#: Fraction of the shared segment's (non-dominant-page) accesses that hit
#: the hot subset — what Carrefour can rebalance quickly.
HOT_SUBSET_WEIGHT = 0.6
#: Pages sampled per epoch for the dynamic policy.
SAMPLES_SHARED = 768
SAMPLES_PRIVATE_PER_THREAD = 4
#: Page-placement churn events actually executed per epoch (the full rate
#: is accounted analytically; this keeps the mechanics exercised).
CHURN_MECHANICAL_SAMPLE = 48


@dataclass
class ThreadCtx:
    """Engine-side view of one application thread."""

    tid: int
    node: int
    cpu_share: float
    work_done: float = 0.0
    finish_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.finish_time is not None


class RuntimeSegment:
    """A workload segment resolved onto pages with a placement view."""

    def __init__(self, definition: SegmentDef, num_nodes: int):
        self.definition = definition
        self.placement = SegmentPlacement(definition.num_pages, num_nodes)
        #: Backing key per page (gpfn in Xen mode, vpfn in Linux mode);
        #: -1 until touched.
        self.keys = np.full(definition.num_pages, -1, dtype=np.int64)
        self.page_weights: Optional[np.ndarray] = None
        if definition.owner_tid is None:
            self.page_weights = self._shared_weights(
                definition.num_pages, definition.spec.hot_weight
            )

    @staticmethod
    def _shared_weights(num_pages: int, hot_weight: float) -> np.ndarray:
        """Access weight per page of a shared segment.

        Page 0 is the dominant hot page (``hot_weight``); the next ~2% of
        pages form a hot subset carrying half of the rest; the tail is
        uniform. This mirrors the skewed page popularity that makes
        Carrefour effective: rebalancing a small hot set moves a large
        share of the traffic.
        """
        w = np.zeros(num_pages, dtype=np.float64)
        if num_pages == 1:
            w[0] = 1.0
            return w
        remainder = 1.0 - hot_weight
        subset = max(
            HOT_SUBSET_MIN_PAGES, int(round(num_pages * HOT_SUBSET_FRACTION))
        )
        subset = min(subset, num_pages - 1)
        w[0] = hot_weight
        w[1 : 1 + subset] = remainder * HOT_SUBSET_WEIGHT / subset
        tail = num_pages - 1 - subset
        if tail > 0:
            w[1 + subset :] = remainder * (1.0 - HOT_SUBSET_WEIGHT) / tail
        else:
            w[1 : 1 + subset] += remainder * (1.0 - HOT_SUBSET_WEIGHT) / subset
        return w

    @property
    def num_pages(self) -> int:
        return self.definition.num_pages

    @property
    def owner_tid(self) -> Optional[int]:
        return self.definition.owner_tid

    def distribution(self, num_nodes: int) -> np.ndarray:
        """Access probability per destination node."""
        if self.page_weights is None:
            counts = self.placement.counts.astype(np.float64)
            total = counts.sum()
            if total == 0:
                return np.zeros(num_nodes)
            return counts / total
        mapped = self.placement.nodes >= 0
        if not mapped.any():
            return np.zeros(num_nodes)
        weights = self.page_weights * mapped
        total = weights.sum()
        if total == 0:
            return np.zeros(num_nodes)
        dist = np.bincount(
            self.placement.nodes[mapped],
            weights=self.page_weights[mapped],
            minlength=num_nodes,
        )
        return dist / total


class AppRun:
    """Runtime state of one application instance.

    Args:
        app: the application model.
        op_model: calibrated per-operation timing.
        segments: resolved runtime segments.
        threads: engine-side thread contexts.
        context: environment adapter doing the memory mechanics.
        config: simulation knobs.
        rng: per-run deterministic randomness.
    """

    def __init__(
        self,
        app: AppSpec,
        op_model: OpModel,
        segments: List[RuntimeSegment],
        threads: List[ThreadCtx],
        context,
        config: SimConfig,
        rng: np.random.Generator,
    ):
        self.app = app
        self.op_model = op_model
        self.segments = segments
        self.threads = threads
        self.context = context
        self.config = config
        self.rng = rng
        self.shared_segments = [s for s in segments if s.owner_tid is None]
        self.private_by_tid: Dict[int, RuntimeSegment] = {
            s.owner_tid: s for s in segments if s.owner_tid is not None
        }
        self.records: List[EpochRecord] = []
        self.pending_policy_cost = 0.0
        self.init_seconds = 0.0
        self.completion_seconds: Optional[float] = None
        self._churn_cursor = 0
        self._dest_cache: Optional[
            Tuple[tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]]
        ] = None
        # One counter watched by every segment placement: the dest-cache
        # key reads a single integer per epoch instead of scanning each
        # segment's version (placements are never swapped out of a
        # RuntimeSegment, so wiring the cell once here is enough).
        self._placement_epoch = [0]
        for s in segments:
            s.placement.version_cell = self._placement_epoch

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def finished(self) -> bool:
        # Checked per run per epoch by both engine drivers; the direct
        # finish_time test skips a property call per thread.
        return all(t.finish_time is not None for t in self.threads)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def initialize(self) -> None:
        """The initialisation phase: first-touch every page.

        Master-initialised segments are touched by thread 0 (the
        master-slave pattern of section 3.1); owner segments by their
        owner. This is where first-touch placement gets decided — through
        the real fault paths.
        """
        master = self.threads[0]
        for segment in self.segments:
            toucher = master
            if (
                segment.definition.spec.init == "owner"
                and segment.owner_tid is not None
            ):
                toucher = self.threads[segment.owner_tid]
            if self.context.touch_segment(self, segment, toucher):
                continue
            for idx in range(segment.num_pages):
                self.context.touch_page(self, segment, idx, toucher)
        self.init_seconds = self.context.take_init_seconds()

    # ------------------------------------------------------------------
    # Per-epoch access model

    def destination_matrix(self, num_nodes: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-thread destination distributions.

        The result is cached and recomputed only when an input actually
        changed: a segment placement mutated (churn, policy migration,
        release) or a thread moved node or finished. Steady-state epochs —
        no churn, static policy — reuse the cached arrays, which are
        frozen (``setflags(write=False)``): a caller mutating the shared
        memo would silently skew every later epoch's solver input.

        Returns:
            (D, src_nodes, active): D[t] is thread t's access distribution
            over destination nodes, src_nodes[t] its node, active[t]
            whether it still runs.
        """
        # The placement epoch only grows, and threads never un-finish,
        # so the monotone counter/count stand in for the full
        # per-segment and per-thread tuples: any placement or
        # completion change moves them. Thread homes can move either
        # way (vCPU migration) and stay a tuple. This key is rebuilt
        # every epoch — keep it cheap.
        nodes = []
        finished = 0
        for t in self.threads:
            nodes.append(t.node)
            if t.finish_time is not None:
                finished += 1
        key = (
            num_nodes,
            self._placement_epoch[0],
            tuple(nodes),
            finished,
        )
        if self._dest_cache is not None and self._dest_cache[0] == key:
            return self._dest_cache[1]
        share = self.app.master_share
        shared_dist = np.zeros(num_nodes)
        total_shared_weight = sum(
            s.definition.spec.weight for s in self.shared_segments
        )
        for seg in self.shared_segments:
            shared_dist += seg.distribution(num_nodes) * (
                seg.definition.spec.weight / total_shared_weight
                if total_shared_weight
                else 1.0
            )
        T = self.num_threads
        D = np.zeros((T, num_nodes))
        src = np.zeros(T, dtype=np.int64)
        active = np.zeros(T, dtype=bool)
        for t in self.threads:
            src[t.tid] = t.node
            active[t.tid] = not t.finished
            private = self.private_by_tid.get(t.tid)
            pdist = (
                private.distribution(num_nodes)
                if private is not None
                else shared_dist
            )
            D[t.tid] = share * shared_dist + (1.0 - share) * pdist
        D.setflags(write=False)
        src.setflags(write=False)
        active.setflags(write=False)
        self._dest_cache = (key, (D, src, active))
        return D, src, active

    def commit_work(
        self, ops: np.ndarray, epoch_start: float, epoch_seconds: float
    ) -> float:
        """Credit per-thread operations; returns total ops done.

        A thread reaching its target records an interpolated finish time
        within the epoch.
        """
        target = self.op_model.ops_per_thread
        done = 0.0
        # One bulk float64 -> python-float conversion; tolist() yields
        # the exact doubles float(ops[tid]) would.
        ops_list = ops.tolist()
        for t in self.threads:
            if t.finish_time is not None:
                continue
            amount = ops_list[t.tid]
            if amount <= 0:
                continue
            remaining = target - t.work_done
            if amount >= remaining and amount > 0:
                fraction = remaining / amount
                t.work_done = target
                t.finish_time = epoch_start + fraction * epoch_seconds
                done += remaining
            else:
                t.work_done += amount
                done += amount
        return done

    # ------------------------------------------------------------------
    # Churn (Streamflow-style mmap/munmap traffic)

    def churn_step(self) -> None:
        """Execute a mechanical sample of the release/realloc churn.

        The *timing* of the full churn rate is modelled analytically (the
        context's churn factor); here a handful of real release+retouch
        cycles run through the allocator, the event queue and the fault
        path so the mechanics stay honest.
        """
        if self.app.churn_per_thread_s <= 0:
            return
        threads = [t for t in self.threads if not t.finished]
        if not threads:
            return
        for _ in range(CHURN_MECHANICAL_SAMPLE):
            thread = threads[self._churn_cursor % len(threads)]
            self._churn_cursor += 1
            segment = self.private_by_tid.get(thread.tid)
            if segment is None or segment.num_pages < 2:
                continue
            idx = 1 + int(self.rng.integers(segment.num_pages - 1))
            self.context.release_page(self, segment, idx)
            self.context.touch_page(self, segment, idx, thread)

    # ------------------------------------------------------------------
    # Dynamic-policy observation

    def build_observation(
        self,
        access_matrix: np.ndarray,
        controller_rho: np.ndarray,
        max_link_rho: float,
        epoch_seconds: float,
        ops_by_node: np.ndarray,
    ) -> EpochObservation:
        """Assemble what the hardware counters would show for this app.

        ``controller_rho`` and ``max_link_rho`` are the *world-total*
        utilisations — the congestion this run experiences, shared with
        every co-located run — while ``access_matrix`` is this run's own
        traffic. The engine separately archives the run's private link
        *contribution* in its :class:`~repro.sim.results.EpochRecord`.
        """
        hot_pages: List[HotPageSample] = []
        if self.context.policy_is_dynamic:
            hot_pages = self._sample_hot_pages(ops_by_node)
        return EpochObservation(
            epoch_seconds=epoch_seconds,
            access_matrix=access_matrix,
            controller_rho=controller_rho,
            max_link_rho=max_link_rho,
            hot_pages=hot_pages,
        )

    def _sample_hot_pages(self, ops_by_node: np.ndarray) -> List[HotPageSample]:
        """Per-page samples as IBS would report them.

        Shared pages: sources follow the per-node operation counts; the
        hottest pages are sampled deterministically, the uniform tail at
        random. Private pages: the owner is the only source — except
        during a *burst*, when a remote node transiently hammers them
        (the behaviour that misleads Carrefour on "low" applications).
        """
        samples: List[HotPageSample] = []
        share = self.app.master_share
        total_shared_ops = float(ops_by_node.sum()) * share
        domain_id = self.context.domain_id
        num_nodes = len(ops_by_node)
        src_dist = ops_by_node / max(ops_by_node.sum(), 1.0)
        for seg in self.shared_segments:
            weights = seg.page_weights
            count = min(SAMPLES_SHARED, seg.num_pages)
            hot_n = min(count // 2, seg.num_pages)
            indices = list(range(hot_n))
            if seg.num_pages > hot_n:
                extra = self.rng.integers(
                    hot_n, seg.num_pages, size=count - hot_n
                )
                indices.extend(int(i) for i in extra)
            for idx in indices:
                key = int(seg.keys[idx])
                if key < 0:
                    continue
                page_ops = total_shared_ops * float(weights[idx])
                counts = np.maximum(
                    0, np.round(src_dist * page_ops)
                ).astype(np.int64)
                if counts.sum() == 0:
                    counts[int(np.argmax(src_dist))] = max(1, int(page_ops))
                samples.append(
                    HotPageSample(
                        page=key,
                        domain_id=domain_id,
                        node_accesses=tuple(int(c) for c in counts),
                        write_fraction=seg.definition.spec.write_fraction,
                    )
                )
        # Private segments: owner-only sources, plus transient bursts.
        burst = self.rng.random() < self.app.burst_noise
        burst_tids = set()
        if burst:
            k = max(1, self.num_threads // 16)
            burst_tids = set(
                int(t) for t in self.rng.choice(self.num_threads, size=k, replace=False)
            )
        for t in self.threads:
            if t.finished:
                continue
            seg = self.private_by_tid.get(t.tid)
            if seg is None:
                continue
            per_page_ops = (
                float(ops_by_node.sum())
                * (1.0 - share)
                / max(1, self.num_threads)
                / seg.num_pages
            )
            source = t.node
            if t.tid in burst_tids:
                source = int(self.rng.integers(num_nodes))
            count = min(SAMPLES_PRIVATE_PER_THREAD, seg.num_pages)
            for idx in self.rng.integers(0, seg.num_pages, size=count):
                key = int(seg.keys[int(idx)])
                if key < 0:
                    continue
                counts = [0] * num_nodes
                counts[source] = max(1, int(per_page_ops))
                samples.append(
                    HotPageSample(
                        page=key,
                        domain_id=domain_id,
                        node_accesses=tuple(counts),
                        write_fraction=0.5,
                    )
                )
        return samples
