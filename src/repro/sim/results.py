"""Run records produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class EpochRecord:
    """Per-epoch measurements of one application run.

    Attributes:
        epoch: index.
        ops_done: operations completed this epoch (all threads).
        imbalance: relative std-dev of the app's per-node access counts.
        max_link_rho: utilisation of the app's most loaded link counting
            *only this run's* traffic (its contribution, the Table 1
            metric) — not the world total the run experiences, which the
            engine hands to policies via the epoch observation instead.
        local_fraction: node-local share of the app's accesses.
        policy_cost_seconds: overhead charged by the dynamic policy.
        migrations: pages moved by the dynamic policy this epoch.
    """

    epoch: int
    ops_done: float
    imbalance: float
    max_link_rho: float
    local_fraction: float
    policy_cost_seconds: float = 0.0
    migrations: int = 0

    def to_json(self) -> Dict[str, float]:
        """A JSON-serializable dict that round-trips exactly.

        All fields are floats or ints; ``json`` preserves both exactly
        (floats via shortest round-trip repr), so
        ``EpochRecord.from_json(record.to_json()) == record`` bit-for-bit.
        """
        return {
            "epoch": self.epoch,
            "ops_done": self.ops_done,
            "imbalance": self.imbalance,
            "max_link_rho": self.max_link_rho,
            "local_fraction": self.local_fraction,
            "policy_cost_seconds": self.policy_cost_seconds,
            "migrations": self.migrations,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, float]) -> "EpochRecord":
        return cls(
            epoch=int(payload["epoch"]),
            ops_done=float(payload["ops_done"]),
            imbalance=float(payload["imbalance"]),
            max_link_rho=float(payload["max_link_rho"]),
            local_fraction=float(payload["local_fraction"]),
            policy_cost_seconds=float(payload.get("policy_cost_seconds", 0.0)),
            migrations=int(payload.get("migrations", 0)),
        )


@dataclass
class RunResult:
    """Outcome of one (application, environment, policy) run.

    Attributes:
        app: application name.
        environment: environment label ("linux", "xen", "xen+").
        policy: policy label ("First-Touch / Carrefour", ...).
        completion_seconds: simulated completion time.
        epochs: epochs simulated.
        records: per-epoch details.
        stats: free-form counters (faults, hypercalls, migrations, ...).
        metrics: transient observability snapshot of the run's context
            (fault, queue, p2m and policy counters at completion), taken
            by the engine. Deliberately excluded from equality and from
            :meth:`to_json`: stored results, reports and cache keys are
            byte-identical with and without observability enabled.
    """

    app: str
    environment: str
    policy: str
    completion_seconds: float
    epochs: int
    records: List[EpochRecord] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict, compare=False, repr=False)

    @property
    def mean_imbalance(self) -> float:
        """Time-averaged access imbalance (the Table 1 metric)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.imbalance for r in self.records]))

    @property
    def mean_max_link_rho(self) -> float:
        """Time-averaged utilisation of the most loaded link (Table 1)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.max_link_rho for r in self.records]))

    @property
    def mean_local_fraction(self) -> float:
        if not self.records:
            return 1.0
        return float(np.mean([r.local_fraction for r in self.records]))

    @property
    def total_migrations(self) -> int:
        return int(sum(r.migrations for r in self.records))

    def to_json(self) -> Dict:
        """JSON-serializable form (see :meth:`EpochRecord.to_json`)."""
        return {
            "app": self.app,
            "environment": self.environment,
            "policy": self.policy,
            "completion_seconds": self.completion_seconds,
            "epochs": self.epochs,
            "records": [r.to_json() for r in self.records],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RunResult":
        return cls(
            app=payload["app"],
            environment=payload["environment"],
            policy=payload["policy"],
            completion_seconds=float(payload["completion_seconds"]),
            epochs=int(payload["epochs"]),
            records=[EpochRecord.from_json(r) for r in payload.get("records", [])],
            stats={k: float(v) for k, v in payload.get("stats", {}).items()},
        )

    def summary(self) -> str:
        """One-line textual summary."""
        return (
            f"{self.app:>14s} [{self.environment}/{self.policy}] "
            f"T={self.completion_seconds:8.2f}s imb={self.mean_imbalance:5.2f} "
            f"link={self.mean_max_link_rho:4.2f} local={self.mean_local_fraction:4.2f}"
        )


def relative_overhead(result: RunResult, baseline: RunResult) -> float:
    """The paper's "relative overhead": T/T_base - 1 (Figures 1, 6, 10)."""
    return result.completion_seconds / baseline.completion_seconds - 1.0


def relative_improvement(result: RunResult, baseline: RunResult) -> float:
    """The paper's "relative improvement": T_base/T - 1 (Figures 2, 7-9)."""
    return baseline.completion_seconds / result.completion_seconds - 1.0
