"""Execution environments: native Linux and Xen/Xen+.

An environment builds a *world*: a fresh machine, the OS/hypervisor stack
on top, and one :class:`~repro.sim.instance.AppRun` per application, each
with a context object that performs the real memory mechanics (guest
faults, hypervisor faults, page-event queues, policy switches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimConfig, DEFAULT_CONFIG
from repro.core import batch
from repro.core.page_queue import lock_service_slowdown
from repro.core.policies.base import PolicyName, PolicySpec
from repro.core.interface import ExternalInterface
from repro.guest.numa import LinuxNumaMode
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.pv_patch import PvNumaPatch
from repro.guest.sync import SyncModel
from repro.guest.vmm import GuestAddressSpace
from repro.hardware.machine import Machine
from repro.hardware.presets import amd48
from repro.hypervisor.xen import Hypervisor, XenFeatures, XEN, XEN_PLUS
from repro.sim.host import Host
from repro.sim.calibration import calibrate_app
from repro.sim.instance import AppRun, RuntimeSegment, ThreadCtx
from repro.sim.placement import PlacementTracker
from repro.util import stable_hash
from repro.vio.disk import DiskModel, IoMode
from repro.workloads.app import AppSpec, build_segments

#: The two applications whose blocking locks Xen+ replaces with MCS spin
#: loops in single-VM runs (section 5.3.2).
MCS_APPS = frozenset({"facesim", "streamcluster"})

#: Guest kernel syscall cost charged per churned page in native mode.
NATIVE_CHURN_SYSCALL_SECONDS = 0.2e-6

GIB = 1 << 30


@dataclass
class VmSpec:
    """One virtual machine of a Xen experiment.

    Attributes:
        app: the application it runs (one app per VM, as in the paper).
        policy: the NUMA policy selection.
        num_vcpus: vCPU count (defaults to the machine's CPU count).
        home_nodes: NUMA placement (defaults to Xen's greedy choice).
        pin_pcpus: explicit vCPU->pCPU pinning.
        memory_pages: guest-physical size override (sized from the
            footprint plus the fragmented head/tail GiBs when omitted).
    """

    app: AppSpec
    policy: PolicySpec = field(default_factory=lambda: PolicySpec(PolicyName.ROUND_4K))
    num_vcpus: Optional[int] = None
    home_nodes: Optional[Sequence[int]] = None
    pin_pcpus: Optional[Sequence[int]] = None
    memory_pages: Optional[int] = None


@dataclass
class World:
    """Everything one engine invocation simulates.

    Attributes:
        epoch_hooks: callables invoked at the *start* of given epochs —
            the hook point for mid-run events like vCPU migrations (the
            load-balancing scenario of the paper's introduction).
    """

    machine: Machine
    runs: List[AppRun]
    label: str
    epoch_seconds: float
    teardown: Callable[[], None] = lambda: None
    epoch_hooks: dict = field(default_factory=dict)
    #: The host this world runs on (None for native-Linux worlds, which
    #: have no hypervisor). Cluster code navigates World -> Host to reach
    #: the hypervisor owning the world's domains.
    host: Optional[Host] = None

    def at_epoch(self, epoch: int, hook: Callable[["World"], None]) -> None:
        """Schedule ``hook(world)`` at the start of ``epoch``."""
        self.epoch_hooks.setdefault(epoch, []).append(hook)


def migrate_vcpu(run, tid: int, new_pcpu: int) -> None:
    """Move one vCPU (and its pinned thread) to a new physical CPU.

    This is the hypervisor-side load balancing the paper's introduction
    defends: because the NUMA policy lives *below* the guest, the vCPU can
    move freely — the guest never sees a topology change (unlike the
    Amazon EC2 approach of exposing the topology, which pins the vCPU
    layout for the VM's lifetime). The thread's placement becomes remote
    until the policy (e.g. Carrefour) migrates its hot pages after it.
    """
    context = run.context
    hypervisor = context.hypervisor
    vcpu = context.domain.vcpus[tid]
    hypervisor.scheduler.pin(vcpu, new_pcpu)
    thread = run.threads[tid]
    thread.node = hypervisor.machine.topology.node_of_cpu(new_pcpu)
    thread.cpu_share = hypervisor.scheduler.cpu_share(vcpu)


class Environment:
    """Base class: holds the machine factory and shared knobs."""

    label = "abstract"

    def __init__(
        self,
        config: SimConfig = DEFAULT_CONFIG,
        machine_factory: Optional[Callable[[], Machine]] = None,
        disk: Optional[DiskModel] = None,
    ):
        self.config = config
        self._machine_factory = machine_factory or (
            lambda: amd48(config=config)
        )
        self.disk = disk or DiskModel()

    def _threads_per_run(self, machine: Machine, count: int) -> int:
        return count if count else machine.num_cpus


# ======================================================================
# Shared run-context plumbing
# ======================================================================


class _PolicyContext:
    """Shared plumbing of the per-run contexts (native Linux and domU).

    Owns everything both environments do identically: the segment->VMA
    mapping, the touch/release templates with their first-access fault
    accounting, and the policy/teardown entry points the engine calls.
    Subclasses wire in their address-space backing and implement the four
    hooks (``_segment_attached``, ``_node_of_touch``, ``_release_mapped``,
    ``_policy_cost``).

    The release path deliberately checks "is this page mapped?" once, up
    front, for both environments — the two historical copies had drifted
    (native detected an unmapped release only after attempting the unmap,
    the domU version before touching any state).
    """

    #: Set by subclasses before any page operation.
    aspace: GuestAddressSpace

    def __init__(
        self,
        sync_fraction: float,
        churn_slowdown: float,
        io_seconds_per_op: float,
        fault_cost_seconds: float = 0.5e-6,
    ):
        self.sync_fraction = sync_fraction
        self.churn_slowdown = churn_slowdown
        self.io_seconds_per_op = io_seconds_per_op
        self.fault_cost_seconds = fault_cost_seconds
        self._init_faults = 0
        self._vma_of_segment: dict = {}

    # ------------------------------------------------------------------
    # Segments

    def attach_segment(self, segment: RuntimeSegment) -> None:
        vma = self.aspace.mmap(segment.definition.name, segment.num_pages)
        self._vma_of_segment[id(segment)] = vma
        self._segment_attached(segment, vma)

    def _segment_attached(self, segment: RuntimeSegment, vma) -> None:
        """Hook: per-page bookkeeping once the VMA exists (default none)."""

    def _vpfn_of(self, segment: RuntimeSegment, idx: int) -> int:
        return self._vma_of_segment[id(segment)].start_vpfn + idx

    # ------------------------------------------------------------------
    # Page touch / release templates

    def touch_page(
        self, run: AppRun, segment: RuntimeSegment, idx: int, thread: ThreadCtx
    ) -> int:
        vpfn = self._vpfn_of(segment, idx)
        guest_thread = _GuestThreadShim(thread)
        first = self.aspace.translate(vpfn) is None
        frame = self.aspace.touch(vpfn, guest_thread)
        if first:
            self._init_faults += 1
        return self._node_of_touch(segment, idx, vpfn, frame, thread, first)

    def _node_of_touch(
        self,
        segment: RuntimeSegment,
        idx: int,
        vpfn: int,
        frame: int,
        thread: ThreadCtx,
        first: bool,
    ) -> int:
        """Hook: resolve the touched page to its NUMA node."""
        raise NotImplementedError

    def touch_segment(
        self, run: AppRun, segment: RuntimeSegment, toucher: ThreadCtx
    ) -> bool:
        """Touch a whole untouched segment in one batch, if possible.

        Returns True when the segment was fully initialised; False means
        the caller must fall back to the per-page :meth:`touch_page` loop
        (the default — subclasses with a batch fast path override this).
        """
        return False

    def release_page(self, run: AppRun, segment: RuntimeSegment, idx: int) -> None:
        vpfn = self._vpfn_of(segment, idx)
        frame = self.aspace.translate(vpfn)
        if frame is None:
            return
        self._release_mapped(segment, idx, vpfn, frame)

    def _release_mapped(
        self, segment: RuntimeSegment, idx: int, vpfn: int, frame: int
    ) -> None:
        """Hook: release a page known to be mapped."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Accounting and policy entry points

    def take_init_seconds(self) -> float:
        """Drain the cost of the guest faults taken since the last call."""
        seconds = self._init_faults * self.fault_cost_seconds
        self._init_faults = 0
        return seconds

    def policy_on_epoch(self, run: AppRun, observation) -> float:
        return self._policy_cost(observation)

    def _policy_cost(self, observation) -> float:
        """Hook: hand the counter observation to the NUMA policy."""
        raise NotImplementedError

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat counter snapshot attached to the run's ``RunResult``.

        Subclasses extend this with their fault/queue/p2m/policy
        counters; values are plain floats so the snapshot serializes
        anywhere (it is *not* part of the result's stored form).
        """
        return {"guest.init_fault_cost_seconds": float(self.fault_cost_seconds)}

    def teardown(self) -> None:
        """Hook: detach policy machinery when the world is torn down."""
        raise NotImplementedError


@dataclass
class _GuestThreadShim:
    """Adapts an engine ThreadCtx to the guest Thread interface."""

    ctx: ThreadCtx

    @property
    def tid(self) -> int:
        return self.ctx.tid

    @property
    def node(self) -> int:
        return self.ctx.node

    @property
    def vcpu_id(self) -> int:
        return self.ctx.tid


# ======================================================================
# Native Linux
# ======================================================================


class _LinuxContext(_PolicyContext):
    """Run context of one application on bare-metal Linux."""

    domain_id = 0

    def __init__(
        self,
        machine: Machine,
        numa_mode: LinuxNumaMode,
        sync_fraction: float,
        churn_slowdown: float,
        io_seconds_per_op: float,
        fault_cost_seconds: float = 0.5e-6,
    ):
        super().__init__(
            sync_fraction=sync_fraction,
            churn_slowdown=churn_slowdown,
            io_seconds_per_op=io_seconds_per_op,
            fault_cost_seconds=fault_cost_seconds,
        )
        self.machine = machine
        self.numa_mode = numa_mode
        self.tracker = PlacementTracker(
            node_of_frame=machine.node_of_frame,
            nodes_of_frames=machine.nodes_of_frames,
        )
        numa_mode.on_page_placed = self.tracker.page_placed
        numa_mode.on_page_moved = self.tracker.page_placed
        # Frame release is keyed by vpfn through the NUMA mode (Carrefour
        # may migrate a page after the fault, making the page-table frame
        # stale), so the address space's frame-keyed release is a no-op.
        self.aspace = GuestAddressSpace(
            backing=numa_mode.backing, release=lambda mfn: None
        )

    @property
    def policy_is_dynamic(self) -> bool:
        return self.numa_mode.engine is not None

    @property
    def policy_label(self) -> str:
        return self.numa_mode.name

    def _segment_attached(self, segment: RuntimeSegment, vma) -> None:
        # In native mode the page key is the (stable) virtual page.
        if batch.vectorized():
            segment.keys[:] = np.arange(
                vma.start_vpfn, vma.end_vpfn, dtype=np.int64
            )
            self.tracker.track_range(
                vma.start_vpfn, segment.num_pages, segment.placement, 0
            )
            return
        for idx in range(segment.num_pages):
            vpfn = vma.start_vpfn + idx
            segment.keys[idx] = vpfn
            self.tracker.track(vpfn, segment.placement, idx)

    def _node_of_touch(self, segment, idx, vpfn, frame, thread, first) -> int:
        return self.machine.node_of_frame(frame)

    def _release_mapped(self, segment, idx, vpfn, frame) -> None:
        self.aspace.unmap_page(vpfn)
        self.numa_mode.release_vpfn(vpfn)
        segment.placement.release(idx)

    def _policy_cost(self, observation) -> float:
        return self.numa_mode.on_epoch(observation)

    def metrics_snapshot(self) -> Dict[str, float]:
        snap = super().metrics_snapshot()
        mode = self.numa_mode
        snap["policy.pages_migrated"] = float(mode.pages_migrated)
        snap["policy.migration_seconds"] = float(mode.migration_seconds)
        engine = mode.engine
        if engine is not None:
            snap["carrefour.iterations"] = float(len(engine.history))
            snap["carrefour.commands"] = float(engine.system.total_commands)
            snap["carrefour.applied"] = float(engine.system.total_applied)
        return snap

    def teardown(self) -> None:
        self.numa_mode.shutdown()


class LinuxEnvironment(Environment):
    """Bare-metal Linux (the paper's baseline and Figure 2 platform).

    Args:
        policy: "first-touch" (Linux default) or "round-4k".
        carrefour: run the Carrefour daemon.
        mcs_locks: use MCS spin locks for the apps that benefit (only in
            the LinuxNUMA baseline, section 5.3.3).
    """

    label = "linux"

    def __init__(
        self,
        policy: str = "first-touch",
        carrefour: bool = False,
        mcs_locks: bool = False,
        num_threads: int = 0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.policy = policy
        self.carrefour = carrefour
        self.mcs_locks = mcs_locks
        self.num_threads = num_threads

    def setup(self, apps: Sequence[AppSpec]) -> World:
        """Build a world running ``apps`` (usually a single one) natively."""
        machine = self._machine_factory()
        sync = SyncModel()
        runs: List[AppRun] = []
        contexts: List[_LinuxContext] = []
        cpu_cursor = 0
        for app in apps:
            threads_n = self._threads_per_run(machine, self.num_threads)
            numa_mode = LinuxNumaMode(
                machine, policy=self.policy, carrefour=self.carrefour
            )
            op_model = calibrate_app(app, machine, threads_n)
            mcs = self.mcs_locks and app.name in MCS_APPS
            sync_fraction = sync.overhead_fraction(
                app.ctx_switches_k_s * 1e3, "native", mcs_locks=mcs
            )
            churn = 1.0
            if app.churn_per_thread_s > 0:
                churn = 1.0 / max(
                    1e-9,
                    1.0
                    - min(
                        0.9,
                        app.churn_per_thread_s * NATIVE_CHURN_SYSCALL_SECONDS,
                    ),
                )
            eff_bw = self.disk.effective_bandwidth_bytes_s(
                app.io_block_kib * 1024, IoMode.NATIVE
            )
            io_per_op = op_model.io_bytes_per_op * threads_n / eff_bw
            context = _LinuxContext(
                machine=machine,
                numa_mode=numa_mode,
                sync_fraction=sync_fraction,
                churn_slowdown=churn,
                io_seconds_per_op=io_per_op,
            )
            threads = []
            for tid in range(threads_n):
                cpu = (cpu_cursor + tid) % machine.num_cpus
                threads.append(
                    ThreadCtx(
                        tid=tid,
                        node=machine.topology.node_of_cpu(cpu),
                        cpu_share=1.0,
                    )
                )
            cpu_cursor += threads_n
            segments = [
                RuntimeSegment(d, machine.num_nodes)
                for d in build_segments(app, threads_n, self.config)
            ]
            for segment in segments:
                context.attach_segment(segment)
            rng = np.random.default_rng(
                self.config.rng_seed + stable_hash(app.name) % 10000
            )
            runs.append(
                AppRun(app, op_model, segments, threads, context, self.config, rng)
            )
            contexts.append(context)

        def teardown():
            for c in contexts:
                c.teardown()

        return World(
            machine=machine,
            runs=runs,
            label=self.label,
            epoch_seconds=self.config.epoch_seconds,
            teardown=teardown,
        )


# ======================================================================
# Xen / Xen+
# ======================================================================


class _XenContext(_PolicyContext):
    """Run context of one application inside a domU."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        domain,
        guest_alloc: GuestPageAllocator,
        patch: PvNumaPatch,
        sync_fraction: float,
        churn_slowdown: float,
        io_seconds_per_op: float,
        fault_cost_seconds: float = 0.5e-6,
    ):
        super().__init__(
            sync_fraction=sync_fraction,
            churn_slowdown=churn_slowdown,
            io_seconds_per_op=io_seconds_per_op,
            fault_cost_seconds=fault_cost_seconds,
        )
        self.hypervisor = hypervisor
        self.domain = domain
        self.guest_alloc = guest_alloc
        self.patch = patch
        self.tracker = PlacementTracker(
            node_of_frame=hypervisor.machine.node_of_frame,
            nodes_of_frames=hypervisor.machine.nodes_of_frames,
        )
        domain.p2m.observer = self.tracker
        self.aspace = GuestAddressSpace(
            backing=lambda vpfn, thread: guest_alloc.alloc(),
            release=guest_alloc.free,
        )
        self._hv_fault_seconds_seen = hypervisor.fault_handler.stats.seconds_spent
        #: The VM's requested policy (set by the environment) — live
        #: migration re-runs this selection on the destination host.
        self.policy_spec: Optional[PolicySpec] = None

    def rebind_host(self, hypervisor: Hypervisor, domain, patch) -> None:
        """Re-home this context onto a migrated-to domain.

        Everything that referenced the source host is replaced: the
        hypervisor, the domain, the PV patch (already wired to the
        destination's hypercalls by the caller), and the placement
        tracker — which must resolve frames against the *destination*
        machine's heap. The fault-seconds watermark restarts at the
        destination handler's current total so source-host fault time is
        not double-charged (and destination boot faults are not missed).
        """
        self.hypervisor = hypervisor
        self.domain = domain
        self.patch = patch
        self.tracker = PlacementTracker(
            node_of_frame=hypervisor.machine.node_of_frame,
            nodes_of_frames=hypervisor.machine.nodes_of_frames,
        )
        domain.p2m.observer = self.tracker
        self._hv_fault_seconds_seen = hypervisor.fault_handler.stats.seconds_spent

    @property
    def domain_id(self) -> int:
        return self.domain.domain_id

    @property
    def policy_is_dynamic(self) -> bool:
        policy = self.domain.numa_policy
        return policy is not None and policy.is_dynamic

    @property
    def policy_label(self) -> str:
        policy = self.domain.numa_policy
        return policy.name if policy else "none"

    def _node_of_touch(self, segment, idx, vpfn, frame, thread, first) -> int:
        # ``frame`` is a *guest-physical* page here; first touches pin it
        # as the segment's page key before the machine-level access.
        if first:
            segment.keys[idx] = frame
            self.tracker.track(frame, segment.placement, idx)
        # The machine-level access: valid p2m entries translate for free,
        # invalid ones take the hypervisor fault path into the policy.
        mfn = self.hypervisor.guest_access(self.domain, thread.tid, frame)
        node = self.hypervisor.machine.node_of_frame(mfn)
        segment.placement.place(idx, node)
        return node

    def touch_segment(self, run, segment, toucher) -> bool:
        """Initialise a whole untouched segment through the batch paths.

        The fast path needs: batch mode on, no sanitizer (scalar
        delegation keeps trap order exact), a fully untouched segment,
        and a contiguous guest allocation (so the segment registers as
        one key range). The p2m entries then split into a translating
        subset (booted mapped) and a faulting subset (first-touch), each
        resolved with one array operation; every counter, placement
        version and float accumulator advances exactly as the per-page
        loop's.
        """
        if not batch.vectorized() or self.hypervisor.sanitizer is not None:
            return False
        if (segment.keys >= 0).any():
            return False
        count = segment.num_pages
        gpfns = self.guest_alloc.alloc_many(count)
        if gpfns is None:
            return False
        vma = self._vma_of_segment[id(segment)]
        vpfns = np.arange(vma.start_vpfn, vma.end_vpfn, dtype=np.int64)
        # The guest fault per page, resolved in bulk.
        self.aspace.map_many(vpfns, gpfns)
        self._init_faults += count
        segment.keys[:] = gpfns
        self.tracker.track_range(int(gpfns[0]), count, segment.placement, 0)
        machine = self.hypervisor.machine
        p2m = self.domain.p2m
        mfns = p2m.mfns_if_valid(gpfns)
        invalid = mfns < 0
        ninvalid = int(np.count_nonzero(invalid))
        if ninvalid:
            faulted = self.hypervisor.guest_faults_many(
                self.domain, toucher.tid, gpfns[invalid]
            )
            if faulted is None:
                # The policy answers faults per page: finish through the
                # scalar access path (the batch allocation above matches
                # what the per-page allocs would have done, hooks
                # included).
                for idx, frame in enumerate(gpfns.tolist()):
                    mfn = self.hypervisor.guest_access(
                        self.domain, toucher.tid, frame
                    )
                    segment.placement.place(idx, machine.node_of_frame(mfn))
                return True
            mfns[invalid] = faulted
        # The scalar touch places every page after the access (faulting
        # pages a second time, after the p2m observer's placement).
        segment.placement.place_many(
            np.arange(count, dtype=np.int64), machine.nodes_of_frames(mfns)
        )
        return True

    def _release_mapped(self, segment, idx, vpfn, frame) -> None:
        self.tracker.untrack(frame)
        segment.placement.release(idx)
        segment.keys[idx] = -1
        self.aspace.unmap_page(vpfn)

    def take_init_seconds(self) -> float:
        guest = super().take_init_seconds()
        total = self.hypervisor.fault_handler.stats.seconds_spent
        hv = total - self._hv_fault_seconds_seen
        self._hv_fault_seconds_seen = total
        return guest + hv

    def _policy_cost(self, observation) -> float:
        policy = self.domain.numa_policy
        if policy is None:
            return 0.0
        return policy.on_epoch(self.domain, observation)

    def metrics_snapshot(self) -> Dict[str, float]:
        # Fault-handler counters are per hypervisor, so in multi-VM
        # worlds every run's snapshot carries the world-wide fault
        # totals; the p2m and queue counters are this domain's own.
        snap = super().metrics_snapshot()
        p2m = self.domain.p2m
        faults = self.hypervisor.fault_handler.stats
        queue = self.patch.queue.stats
        snap.update(
            {
                "p2m.num_entries": float(p2m.num_entries),
                "p2m.num_valid": float(p2m.num_valid),
                "p2m.invalidations": float(p2m.invalidations),
                "p2m.migrations": float(p2m.migrations),
                "faults.hypervisor": float(faults.hypervisor_faults),
                "faults.write_protection": float(faults.write_protection_faults),
                "faults.seconds_spent": float(faults.seconds_spent),
                "queue.events": float(queue.events),
                "queue.flushes": float(queue.flushes),
                "queue.flushed_events": float(queue.flushed_events),
                "queue.lock_acquisitions": float(queue.lock_acquisitions),
                "queue.flush_hold_seconds": float(queue.flush_hold_seconds),
                "queue.append_hold_seconds": float(queue.append_hold_seconds),
            }
        )
        engine = getattr(self.domain.numa_policy, "engine", None)
        if engine is not None:
            snap["carrefour.iterations"] = float(len(engine.history))
            snap["carrefour.commands"] = float(engine.system.total_commands)
            snap["carrefour.applied"] = float(engine.system.total_applied)
        return snap

    def teardown(self) -> None:
        self.patch.detach()


class XenEnvironment(Environment):
    """Xen or Xen+ with the paper's NUMA policy interface.

    Args:
        features: :data:`~repro.hypervisor.xen.XEN` or
            :data:`~repro.hypervisor.xen.XEN_PLUS`.
        queue_batch: page-event queue batch size (64 in the paper).
        queue_partitions: page-event queue partitions (4 in the paper).
        unbatched_hypercalls: strawman mode — one hypercall per release
            (section 4.2.3's "divides wrmem by 3").
    """

    def __init__(
        self,
        features: XenFeatures = XEN_PLUS,
        queue_batch: int = 64,
        queue_partitions: int = 4,
        unbatched_hypercalls: bool = False,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.features = features
        self.queue_batch = 1 if unbatched_hypercalls else queue_batch
        self.queue_partitions = 1 if unbatched_hypercalls else queue_partitions
        self.unbatched_hypercalls = unbatched_hypercalls

    @property
    def label(self) -> str:  # type: ignore[override]
        return self.features.name.lower()

    def setup(self, vms: Sequence[VmSpec]) -> World:
        """Build a world with one domU per :class:`VmSpec`."""
        return self.setup_on(self.build_host(), vms)

    def build_host(self, host_id: int = 0) -> Host:
        """Boot a fresh host (machine + hypervisor) for this environment."""
        machine = self._machine_factory()
        return Host(
            host_id=host_id,
            machine=machine,
            hypervisor=Hypervisor(machine, features=self.features),
        )

    def setup_on(
        self,
        host: Host,
        vms: Sequence[VmSpec],
        label: Optional[str] = None,
    ) -> World:
        """Build a world with one domU per :class:`VmSpec` on ``host``.

        ``label`` overrides the world label (cluster hosts append their
        host id so per-world observability cells stay distinguishable).
        """
        hypervisor = host.hypervisor
        sync = SyncModel(ipi=hypervisor.ipi)
        single_vm = len(vms) == 1
        runs: List[AppRun] = []
        contexts: List[_XenContext] = []
        for spec in vms:
            run, context = self._setup_vm(
                hypervisor, sync, spec, single_vm
            )
            runs.append(run)
            contexts.append(context)
        # CPU shares depend on the *final* runqueues: a pCPU hosting two
        # vCPUs (the consolidated setup) gives each half a CPU, but the
        # first VM was set up before the second was pinned.
        for run, context in zip(runs, contexts):
            for thread in run.threads:
                vcpu = context.domain.vcpus[thread.tid]
                thread.cpu_share = hypervisor.scheduler.cpu_share(vcpu)

        world = World(
            machine=host.machine,
            runs=runs,
            label=label if label is not None else self.label,
            epoch_seconds=self.config.epoch_seconds,
            host=host,
        )

        def teardown():
            for run in world.runs:
                run.context.teardown()

        world.teardown = teardown
        return world

    # ------------------------------------------------------------------
    # Live-migration support (repro.cluster drives these)

    def clone_domain_on(self, host: Host, run: AppRun):
        """Create the destination domain of a live migration.

        The domain is sized like the source and booted through the same
        boot policy — which is precisely "re-run the NUMA placement on
        the destination": the boot populate places every page fresh on
        the destination's heap instead of inheriting the source layout.
        """
        context = run.context
        source = context.domain
        boot_base = (
            PolicyName.ROUND_1G
            if context.policy_spec.base is PolicyName.ROUND_1G
            else PolicyName.ROUND_4K
        )
        return host.hypervisor.create_domain(
            name=source.name,
            num_vcpus=source.num_vcpus,
            memory_pages=source.memory_pages,
            boot_policy=PolicySpec(boot_base),
        )

    def complete_migration(self, run: AppRun, dest_host: Host, domain) -> None:
        """Re-home ``run`` onto ``domain`` (already created on ``dest_host``).

        Rebinds every host-coupled piece of the run context — hypervisor,
        domain, placement tracker, hypercall stub, PV patch — re-selects
        the runtime policy on the destination, re-pins the threads to the
        destination vCPUs, resyncs segment placements from the
        destination p2m, and finally destroys the source domain (freeing
        its frames on the source heap).
        """
        context = run.context
        source_hypervisor = context.hypervisor
        source_domain = context.domain
        hypervisor = dest_host.hypervisor

        context.patch.detach()
        external = ExternalInterface(hypervisor.hypercalls, domain.domain_id)
        patch = PvNumaPatch(
            context.guest_alloc,
            external,
            batch_size=self.queue_batch,
            num_partitions=self.queue_partitions,
        )
        spec_policy = context.policy_spec
        boot_base = (
            PolicyName.ROUND_1G
            if spec_policy.base is PolicyName.ROUND_1G
            else PolicyName.ROUND_4K
        )
        # The same runtime selection `_setup_vm` performed, re-run against
        # the destination hypervisor (fresh policy state, fresh placement).
        if spec_policy.base is PolicyName.FIRST_TOUCH:
            patch.select_policy(
                PolicyName.FIRST_TOUCH.value, carrefour=spec_policy.carrefour
            )
            patch.report_free_pages()
        elif spec_policy.carrefour:
            patch.select_policy(boot_base.value, carrefour=True)
        context.rebind_host(hypervisor, domain, patch)

        for thread in run.threads:
            vcpu = domain.vcpus[thread.tid]
            thread.node = hypervisor.vcpu_node(domain, thread.tid)
            thread.cpu_share = hypervisor.scheduler.cpu_share(vcpu)

        for segment in run.segments:
            touched = np.nonzero(segment.keys >= 0)[0]
            if touched.size == 0:
                continue
            keys = segment.keys[touched]
            nodes = domain.p2m.nodes_of(keys)
            placed = nodes >= 0
            segment.placement.place_many(
                touched[placed], nodes[placed].astype(np.int64)
            )
            for idx, key in zip(touched.tolist(), keys.tolist()):
                context.tracker.track(key, segment.placement, idx)

        # The source p2m still observes the *old* tracker, whose
        # registrations point at the same shared segment placements the
        # loop above just resynced — detach it so tearing the source
        # down doesn't release the destination's placements.
        source_domain.p2m.observer = None
        # The source p2m still observes the *old* tracker, whose
        # registrations point at the same shared segment placements the
        # loop above just resynced — detach it so tearing the source
        # down doesn't release the destination's placements.
        source_domain.p2m.observer = None
        source_hypervisor.destroy_domain(source_domain)

    # ------------------------------------------------------------------

    def vm_memory_pages(self, spec: VmSpec, num_cpus: int) -> int:
        """Guest-physical size a :class:`VmSpec` will be given.

        Segment rounding can exceed the raw footprint (one page per
        thread minimum); size the guest generously. The chunked middle
        region is at least 8 GiB: a VM is not sized to its application,
        and round-1G's behaviour on a small app (its pages packed into
        one or two 1 GiB chunks) only shows with a realistic VM size.
        Exposed so cluster placement can score hosts for a VM *before*
        any domain exists.
        """
        num_vcpus = spec.num_vcpus or num_cpus
        gib_pages = max(1, GIB // self.config.page_bytes)
        footprint_pages = self.config.pages_for_bytes(spec.app.footprint_bytes)
        alloc_slack = num_vcpus + 256
        middle_pages = max(footprint_pages + alloc_slack, 8 * gib_pages)
        return spec.memory_pages or (middle_pages + 2 * gib_pages)

    def _setup_vm(
        self,
        hypervisor: Hypervisor,
        sync: SyncModel,
        spec: VmSpec,
        single_vm: bool,
    ) -> Tuple[AppRun, _XenContext]:
        machine = hypervisor.machine
        app = spec.app
        num_vcpus = spec.num_vcpus or machine.num_cpus
        gib_pages = max(1, GIB // self.config.page_bytes)
        footprint_pages = self.config.pages_for_bytes(app.footprint_bytes)
        alloc_slack = num_vcpus + 256
        memory_pages = self.vm_memory_pages(spec, machine.num_cpus)

        boot_base = (
            PolicyName.ROUND_1G
            if spec.policy.base is PolicyName.ROUND_1G
            else PolicyName.ROUND_4K
        )
        domain = hypervisor.create_domain(
            name=app.name,
            num_vcpus=num_vcpus,
            memory_pages=memory_pages,
            home_nodes=spec.home_nodes,
            boot_policy=PolicySpec(boot_base),
            pin_pcpus=spec.pin_pcpus,
        )

        # Guest allocator: the kernel owns the (fragmented) first GiB, so
        # application memory comes from the round-1G-chunked middle.
        guest_alloc = GuestPageAllocator(
            first_gpfn=gib_pages,
            num_pages=footprint_pages + alloc_slack,
        )
        external = ExternalInterface(hypervisor.hypercalls, domain.domain_id)
        patch = PvNumaPatch(
            guest_alloc,
            external,
            batch_size=self.queue_batch,
            num_partitions=self.queue_partitions,
        )

        # Runtime policy selection through the real hypercall.
        if spec.policy.base is PolicyName.FIRST_TOUCH:
            patch.select_policy(
                PolicyName.FIRST_TOUCH.value, carrefour=spec.policy.carrefour
            )
            patch.report_free_pages()
        elif spec.policy.carrefour:
            patch.select_policy(boot_base.value, carrefour=True)

        threads = []
        for tid in range(num_vcpus):
            threads.append(
                ThreadCtx(
                    tid=tid,
                    node=hypervisor.vcpu_node(domain, tid),
                    cpu_share=hypervisor.scheduler.cpu_share(domain.vcpus[tid]),
                )
            )

        op_model = calibrate_app(app, machine, num_vcpus)
        mcs = (
            self.features.mcs_locks and single_vm and app.name in MCS_APPS
        )
        sync_fraction = sync.overhead_fraction(
            app.ctx_switches_k_s * 1e3, "guest", mcs_locks=mcs
        )
        churn = self._churn_slowdown(app, num_vcpus, domain, external)
        io_per_op = self._io_seconds_per_op(
            hypervisor, domain, app, op_model, num_vcpus
        )

        context = _XenContext(
            hypervisor=hypervisor,
            domain=domain,
            guest_alloc=guest_alloc,
            patch=patch,
            sync_fraction=sync_fraction,
            churn_slowdown=churn,
            io_seconds_per_op=io_per_op,
        )
        context.policy_spec = spec.policy
        context.tlb_seconds_per_op = self._tlb_seconds_per_op(
            machine, app, domain, num_vcpus
        )
        segments = [
            RuntimeSegment(d, machine.num_nodes)
            for d in build_segments(app, num_vcpus, self.config)
        ]
        for segment in segments:
            context.attach_segment(segment)
        rng = np.random.default_rng(
            self.config.rng_seed
            + stable_hash((app.name, domain.domain_id)) % 10000
        )
        run = AppRun(
            app, op_model, segments, threads, context, self.config, rng
        )
        return run, context

    def _churn_slowdown(self, app, num_vcpus, domain, external) -> float:
        """Completion-time factor of the page-release traffic."""
        rate = app.churn_per_thread_s
        if rate <= 0:
            return 1.0
        if self.unbatched_hypercalls:
            service = external.hypercalls.costs.base_seconds
            factor = lock_service_slowdown(rate, num_vcpus, service, 1)
        else:
            per_event = (
                external.flush_cost(self.queue_batch) / self.queue_batch
            )
            factor = lock_service_slowdown(
                rate, num_vcpus, per_event, self.queue_partitions
            )
        policy = domain.numa_policy
        if policy is not None and policy.wants_page_events:
            # Under first-touch every reallocated page faults back in.
            fault_busy = min(
                0.9,
                rate * 2.0e-6,
            )
            factor *= 1.0 / (1.0 - fault_busy)
        return factor

    def _tlb_seconds_per_op(self, machine, app, domain, num_vcpus) -> float:
        """Nested-TLB overhead per operation (section 7 extension).

        Only charged when ``config.model_tlb`` is on: the baseline
        reproduction matches the paper, which has no TLB dimension. The
        fine-grained policies force 4 KiB nested mappings; round-1G's
        eager 1 GiB regions allow superpages and nearly never miss.
        """
        if not self.config.model_tlb:
            return 0.0
        from repro.hardware.tlb import TlbModel, policy_granularity

        tlb = TlbModel()
        policy = domain.numa_policy
        name = policy.name if policy is not None else "round-4k"
        granularity = policy_granularity(name)
        working_set = app.footprint_bytes / max(1, num_vcpus)
        # Page-table pages of spread placements live mostly remote.
        remote_fraction = 0.2 if name.startswith("first-touch") else 0.875
        cycles = tlb.overhead_cycles_per_access(
            working_set, granularity, remote_fraction
        )
        return machine.latency.cycles_to_seconds(cycles)

    def _io_seconds_per_op(
        self, hypervisor, domain, app, op_model, num_vcpus
    ) -> float:
        if op_model.io_bytes_per_op <= 0:
            return 0.0
        mode_name = hypervisor.io_mode(domain)
        mode = IoMode(mode_name)
        eff_bw = self.disk.effective_bandwidth_bytes_s(
            app.io_block_kib * 1024, mode
        )
        if mode is IoMode.PASSTHROUGH:
            # Xen+ DMA buffers are spread over the nodes by the hypervisor
            # page table, giving slightly more parallel transfers than the
            # single-node DMA buffers of native Linux (section 5.3.3).
            eff_bw *= 1.05
        return op_model.io_bytes_per_op * num_vcpus / eff_bw
