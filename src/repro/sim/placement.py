"""Page -> node placement views kept in sync with the real page tables.

The engine never recomputes placements by walking page tables; instead a
:class:`SegmentPlacement` array per workload segment is updated
incrementally by a :class:`PlacementTracker`, which is installed as the
p2m observer (Xen mode) or wired to the Linux NUMA mode's hooks (native
mode). The p2m / Linux page table stays authoritative — unit tests check
the views never drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError


class SegmentPlacement:
    """Node placement of one segment's pages.

    Attributes:
        nodes: per-page node id (-1 = currently unmapped).
        counts: pages per node, maintained incrementally.
    """

    def __init__(self, num_pages: int, num_nodes: int):
        if num_pages < 1:
            raise ReproError("segment needs at least one page")
        self.num_pages = num_pages
        self.num_nodes = num_nodes
        self.nodes = np.full(num_pages, -1, dtype=np.int32)
        self.counts = np.zeros(num_nodes, dtype=np.int64)
        #: Bumped on every mutation — the cache-invalidation token for
        #: views derived from this placement (AppRun.destination_matrix).
        self.version = 0

    def place(self, idx: int, node: int) -> None:
        """Record that page ``idx`` now lives on ``node``."""
        old = self.nodes[idx]
        if old >= 0:
            self.counts[old] -= 1
        self.nodes[idx] = node
        self.counts[node] += 1
        self.version += 1

    def release(self, idx: int) -> None:
        """Record that page ``idx`` lost its backing frame."""
        old = self.nodes[idx]
        if old >= 0:
            self.counts[old] -= 1
            self.nodes[idx] = -1
            self.version += 1

    @property
    def mapped_pages(self) -> int:
        return int(self.counts.sum())

    def node_of(self, idx: int) -> Optional[int]:
        node = int(self.nodes[idx])
        return node if node >= 0 else None

    def distribution(self, hot_weight: float = 0.0) -> np.ndarray:
        """Access probability per destination node for this segment.

        Page 0 is the segment's hot page carrying ``hot_weight`` of the
        accesses; the rest are uniform over mapped pages.
        """
        mapped = self.mapped_pages
        dist = np.zeros(self.num_nodes, dtype=np.float64)
        if mapped == 0:
            return dist
        uniform = self.counts.astype(np.float64) / mapped
        if hot_weight <= 0.0:
            return uniform
        hot_node = self.nodes[0]
        cold = uniform * (1.0 - hot_weight)
        if hot_node >= 0:
            cold[hot_node] += hot_weight
        else:
            # Hot page unmapped (it will fault on first access): spread
            # its weight like the cold pages until it lands somewhere.
            cold = uniform
        return cold

    def verify_against(self, node_lookup) -> bool:
        """Debug helper: check the view matches an authoritative lookup.

        Args:
            node_lookup: callable(idx) -> node or None.
        """
        for idx in range(self.num_pages):
            expected = node_lookup(idx)
            actual = self.node_of(idx)
            if expected != actual:
                return False
        return True


@dataclass
class PlacementTracker:
    """Routes page-table change notifications into segment placements.

    Registered as a :class:`~repro.hypervisor.p2m.P2MTable` observer in
    Xen mode (keys are gpfns) or fed by the Linux NUMA mode hooks in
    native mode (keys are vpfns).

    Args:
        node_of_frame: maps a machine frame to its NUMA node.
    """

    node_of_frame: object  # Callable[[int], int]
    _pages: Dict[int, Tuple[SegmentPlacement, int]] = field(default_factory=dict)

    def track(self, key: int, placement: SegmentPlacement, idx: int) -> None:
        """Start tracking page ``key`` as ``placement[idx]``."""
        self._pages[key] = (placement, idx)

    def untrack(self, key: int) -> None:
        """Stop tracking ``key`` (the segment was torn down)."""
        self._pages.pop(key, None)

    def tracked(self, key: int) -> Optional[Tuple[SegmentPlacement, int]]:
        return self._pages.get(key)

    # ------------------------------------------------------------------
    # P2M observer protocol

    def entry_set(self, gpfn: int, mfn: int) -> None:
        """A page gained (or changed) its backing frame."""
        hit = self._pages.get(gpfn)
        if hit is None:
            return
        placement, idx = hit
        placement.place(idx, self.node_of_frame(mfn))

    def entry_invalidated(self, gpfn: int) -> None:
        """A page lost its backing frame."""
        hit = self._pages.get(gpfn)
        if hit is None:
            return
        placement, idx = hit
        placement.release(idx)

    # ------------------------------------------------------------------
    # Linux-mode hooks (node known directly, no frame lookup)

    def page_placed(self, key: int, node: int) -> None:
        hit = self._pages.get(key)
        if hit is None:
            return
        placement, idx = hit
        placement.place(idx, node)

    def page_released(self, key: int) -> None:
        self.entry_invalidated(key)
