"""Page -> node placement views kept in sync with the real page tables.

The engine never recomputes placements by walking page tables; instead a
:class:`SegmentPlacement` array per workload segment is updated
incrementally by a :class:`PlacementTracker`, which is installed as the
p2m observer (Xen mode) or wired to the Linux NUMA mode's hooks (native
mode). The p2m / Linux page table stays authoritative — unit tests check
the views never drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError


class SegmentPlacement:
    """Node placement of one segment's pages.

    Attributes:
        nodes: per-page node id (-1 = currently unmapped).
        counts: pages per node, maintained incrementally.
    """

    def __init__(self, num_pages: int, num_nodes: int):
        if num_pages < 1:
            raise ReproError("segment needs at least one page")
        self.num_pages = num_pages
        self.num_nodes = num_nodes
        self.nodes = np.full(num_pages, -1, dtype=np.int32)
        self.counts = np.zeros(num_nodes, dtype=np.int64)
        #: Bumped on every mutation — the cache-invalidation token for
        #: views derived from this placement (AppRun.destination_matrix).
        self.version = 0
        #: Optional one-slot counter (a list) shared with the owning
        #: run and bumped alongside ``version``: the run's cache key
        #: reads one integer instead of scanning every segment's
        #: version each epoch.
        self.version_cell: Optional[list] = None

    def place(self, idx: int, node: int) -> None:
        """Record that page ``idx`` now lives on ``node``."""
        old = self.nodes[idx]
        if old >= 0:
            self.counts[old] -= 1
        self.nodes[idx] = node
        self.counts[node] += 1
        self.version += 1
        if self.version_cell is not None:
            self.version_cell[0] += 1

    def release(self, idx: int) -> None:
        """Record that page ``idx`` lost its backing frame."""
        old = self.nodes[idx]
        if old >= 0:
            self.counts[old] -= 1
            self.nodes[idx] = -1
            self.version += 1
            if self.version_cell is not None:
                self.version_cell[0] += 1

    def place_many(self, idxs: np.ndarray, nodes: np.ndarray) -> None:
        """Batch :meth:`place`: one array write, same counts and version.

        ``idxs`` must be duplicate-free (batch callers place whole
        segments or whole flush batches, which are unique by
        construction); the version advances by ``len(idxs)`` exactly as
        the per-page loop would.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return
        nodes = np.asarray(nodes, dtype=np.int64)
        old = self.nodes[idxs]
        mapped = old[old >= 0]
        if mapped.size:
            self.counts -= np.bincount(mapped, minlength=self.num_nodes)
        self.nodes[idxs] = nodes
        self.counts += np.bincount(nodes, minlength=self.num_nodes)
        self.version += int(idxs.size)
        if self.version_cell is not None:
            self.version_cell[0] += int(idxs.size)

    def release_many(self, idxs: np.ndarray) -> None:
        """Batch :meth:`release` over duplicate-free ``idxs``.

        Like the scalar form, already-unmapped pages are skipped and do
        not advance the version.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return
        old = self.nodes[idxs]
        hit = old >= 0
        released = int(np.count_nonzero(hit))
        if not released:
            return
        self.counts -= np.bincount(old[hit], minlength=self.num_nodes)
        self.nodes[idxs[hit]] = -1
        self.version += released
        if self.version_cell is not None:
            self.version_cell[0] += released

    @property
    def mapped_pages(self) -> int:
        return int(self.counts.sum())

    def node_of(self, idx: int) -> Optional[int]:
        node = int(self.nodes[idx])
        return node if node >= 0 else None

    def distribution(self, hot_weight: float = 0.0) -> np.ndarray:
        """Access probability per destination node for this segment.

        Page 0 is the segment's hot page carrying ``hot_weight`` of the
        accesses; the rest are uniform over mapped pages.
        """
        mapped = self.mapped_pages
        dist = np.zeros(self.num_nodes, dtype=np.float64)
        if mapped == 0:
            return dist
        uniform = self.counts.astype(np.float64) / mapped
        if hot_weight <= 0.0:
            return uniform
        hot_node = self.nodes[0]
        cold = uniform * (1.0 - hot_weight)
        if hot_node >= 0:
            cold[hot_node] += hot_weight
        else:
            # Hot page unmapped (it will fault on first access): spread
            # its weight like the cold pages until it lands somewhere.
            cold = uniform
        return cold

    def verify_against(self, node_lookup) -> bool:
        """Debug helper: check the view matches an authoritative lookup.

        Args:
            node_lookup: callable(idx) -> node or None.
        """
        for idx in range(self.num_pages):
            expected = node_lookup(idx)
            actual = self.node_of(idx)
            if expected != actual:
                return False
        return True


@dataclass
class PlacementTracker:
    """Routes page-table change notifications into segment placements.

    Registered as a :class:`~repro.hypervisor.p2m.P2MTable` observer in
    Xen mode (keys are gpfns) or fed by the Linux NUMA mode hooks in
    native mode (keys are vpfns).

    Pages register either one by one (:meth:`track`, a dict entry) or as
    whole consecutively-keyed ranges (:meth:`track_range`, the batch init
    path) — a range covers a segment without materialising one dict entry
    per page, and the batch observer hooks resolve against ranges with
    array masks instead of per-key lookups.

    Args:
        node_of_frame: maps a machine frame to its NUMA node.
        nodes_of_frames: optional vectorized form over an mfn array.
    """

    node_of_frame: object  # Callable[[int], int]
    nodes_of_frames: Optional[object] = None  # Callable[[ndarray], ndarray]
    _pages: Dict[int, Tuple[SegmentPlacement, int]] = field(default_factory=dict)
    #: (start_key, count, placement, idx0) per registered range.
    _ranges: list = field(default_factory=list)
    #: Keys untracked out of a range (range membership is implicit, so a
    #: removal needs an explicit tombstone).
    _dead: set = field(default_factory=set)
    #: Last range a scalar lookup resolved through — sequential touches
    #: hit the same segment, making scalar lookups O(1) despite ranges.
    _last_range: Optional[tuple] = None

    def track(self, key: int, placement: SegmentPlacement, idx: int) -> None:
        """Start tracking page ``key`` as ``placement[idx]``."""
        self._pages[key] = (placement, idx)
        if self._dead:
            self._dead.discard(key)

    def track_range(
        self, start_key: int, count: int, placement: SegmentPlacement, idx0: int = 0
    ) -> None:
        """Track ``count`` consecutive keys as ``placement[idx0:idx0+count]``.

        Equivalent to ``count`` :meth:`track` calls for
        ``start_key + i -> placement[idx0 + i]``, registered in O(1).
        """
        self._ranges.append((int(start_key), int(count), placement, int(idx0)))

    def untrack(self, key: int) -> None:
        """Stop tracking ``key`` (released or torn down)."""
        self._pages.pop(key, None)
        if self._ranges:
            self._dead.add(key)

    def tracked(self, key: int) -> Optional[Tuple[SegmentPlacement, int]]:
        hit = self._pages.get(key)
        if hit is not None:
            return hit
        if key in self._dead:
            return None
        cached = self._last_range
        if cached is not None and cached[0] <= key < cached[0] + cached[1]:
            return (cached[2], cached[3] + (key - cached[0]))
        for entry in self._ranges:
            start, count, placement, idx0 = entry
            if start <= key < start + count:
                self._last_range = entry
                return (placement, idx0 + (key - start))
        return None

    def _frame_nodes(self, mfns: np.ndarray) -> np.ndarray:
        if self.nodes_of_frames is not None:
            return self.nodes_of_frames(mfns)
        return np.fromiter(
            (self.node_of_frame(int(m)) for m in mfns),
            dtype=np.int64,
            count=len(mfns),
        )

    # ------------------------------------------------------------------
    # P2M observer protocol

    def entry_set(self, gpfn: int, mfn: int) -> None:
        """A page gained (or changed) its backing frame."""
        hit = self.tracked(gpfn)
        if hit is None:
            return
        placement, idx = hit
        placement.place(idx, self.node_of_frame(mfn))

    def entry_invalidated(self, gpfn: int) -> None:
        """A page lost its backing frame."""
        hit = self.tracked(gpfn)
        if hit is None:
            return
        placement, idx = hit
        placement.release(idx)

    def entries_set(self, gpfns: np.ndarray, mfns: np.ndarray) -> None:
        """Batch :meth:`entry_set` (p2m batch-observer protocol).

        Keys resolving into registered ranges are placed with one
        ``place_many`` per range; anything else (dict-tracked keys,
        tombstones, untracked pages) goes through the scalar hook. The
        observable placement state ends exactly as the per-entry loop's —
        batch callers pass duplicate-free gpfns, so apply order cannot
        matter.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        mfns = np.asarray(mfns, dtype=np.int64)
        handled = np.zeros(gpfns.shape, dtype=bool)
        if self._ranges and not self._pages and not self._dead:
            for start, count, placement, idx0 in self._ranges:
                mask = (gpfns >= start) & (gpfns < start + count) & ~handled
                if not mask.any():
                    continue
                keys = gpfns[mask]
                nodes = self._frame_nodes(mfns[mask])
                placement.place_many(idx0 + (keys - start), nodes)
                handled |= mask
        if handled.all():
            return
        for pos in np.nonzero(~handled)[0].tolist():
            self.entry_set(int(gpfns[pos]), int(mfns[pos]))

    def entries_invalidated(self, gpfns: np.ndarray) -> None:
        """Batch :meth:`entry_invalidated` (p2m batch-observer protocol)."""
        gpfns = np.asarray(gpfns, dtype=np.int64)
        handled = np.zeros(gpfns.shape, dtype=bool)
        if self._ranges and not self._pages and not self._dead:
            for start, count, placement, idx0 in self._ranges:
                mask = (gpfns >= start) & (gpfns < start + count) & ~handled
                if not mask.any():
                    continue
                keys = gpfns[mask]
                placement.release_many(idx0 + (keys - start))
                handled |= mask
        if handled.all():
            return
        for pos in np.nonzero(~handled)[0].tolist():
            self.entry_invalidated(int(gpfns[pos]))

    # ------------------------------------------------------------------
    # Linux-mode hooks (node known directly, no frame lookup)

    def page_placed(self, key: int, node: int) -> None:
        hit = self.tracked(key)
        if hit is None:
            return
        placement, idx = hit
        placement.place(idx, node)

    def page_released(self, key: int) -> None:
        self.entry_invalidated(key)
