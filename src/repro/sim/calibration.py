"""Calibrating each application's memory intensity from Table 1.

The simulator needs to know how memory-bound each application is — that is
what decides how much a NUMA policy can help. Rather than inventing
per-application constants, we *invert the paper's own measurements*:
Table 1 reports the interconnect load (utilisation of the most loaded
link) under first-touch and under round-4K on native Linux with 48
threads. Given the machine's routing, each placement implies a traffic
share per link per memory access, so the measured utilisation pins down
the application's total memory access rate ``A``:

* round-4K model: destinations uniform over nodes (pages spread);
* first-touch model: a ``master_share`` of accesses converge on the
  master's node, the rest stay local.

We take the larger of the two estimates (the models bracket the real
pattern) and derive the per-operation compute time so that 48 threads
running uncontended produce exactly that access rate. The model of one
"operation" is: one memory access plus ``cpu_seconds`` of computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.hardware.counters import CACHE_LINE_BYTES
from repro.hardware.machine import Machine
from repro.workloads.app import AppSpec


@dataclass(frozen=True)
class OpModel:
    """Per-operation timing of one application on one machine.

    Attributes:
        cpu_seconds: compute time per operation (latency-independent).
        mem_refs_per_op: memory accesses per operation (fixed at 1).
        access_rate_48t: calibrated machine-wide access rate (refs/s).
        ops_per_thread: work target per thread (sets the nominal runtime).
        io_bytes_per_op: disk bytes read per operation, machine-wide.
    """

    cpu_seconds: float
    mem_refs_per_op: float
    access_rate_48t: float
    ops_per_thread: float
    io_bytes_per_op: float


def _link_arrays(machine: Machine) -> Tuple[List, np.ndarray, Dict]:
    """Per-link bandwidth array and per-(s,d) route link indices."""
    links = list(machine.topology.links)
    index = {l.key: i for i, l in enumerate(links)}
    bw = np.array([l.bandwidth_gib_s * (1 << 30) for l in links])
    n = machine.num_nodes
    routes: Dict[Tuple[int, int], List[int]] = {}
    for s in range(n):
        for d in range(n):
            routes[(s, d)] = [index[l.key] for l in machine.topology.route(s, d)]
    return links, bw, routes


def _max_link_seconds_per_access(machine: Machine, matrix: np.ndarray) -> float:
    """Peak link (bytes x share / bandwidth) per memory access.

    ``matrix`` is a per-access destination distribution: matrix[s, d] is
    the probability one access goes from node s to node d. The return
    value r satisfies: at access rate A, the most loaded link has
    utilisation ``A * r``.
    """
    links, bw, routes = _link_arrays(machine)
    loads = np.zeros(len(links))
    n = machine.num_nodes
    for s in range(n):
        for d in range(n):
            share = matrix[s, d]
            if s == d or share == 0.0:
                continue
            for li in routes[(s, d)]:
                loads[li] += share * CACHE_LINE_BYTES / bw[li]
    return float(loads.max()) if len(loads) else 0.0


def _round4k_matrix(num_nodes: int) -> np.ndarray:
    """Uniform sources x uniform destinations."""
    return np.full((num_nodes, num_nodes), 1.0 / (num_nodes * num_nodes))


def _first_touch_matrix(num_nodes: int, master_share: float) -> np.ndarray:
    """``master_share`` of accesses to node 0, the rest local."""
    m = np.zeros((num_nodes, num_nodes))
    for s in range(num_nodes):
        m[s, 0] += master_share / num_nodes
        m[s, s] += (1.0 - master_share) / num_nodes
    return m


def uncontended_mem_seconds(machine: Machine, dest_dist: np.ndarray, src: int = 0) -> float:
    """Average uncontended access time for a destination distribution."""
    total = 0.0
    for d, p in enumerate(dest_dist):
        if p == 0.0:
            continue
        hops = machine.topology.hops(src, d)
        cycles = machine.latency.memory_latency_cycles(hops, 0.0, 0.0)
        total += p * machine.latency.cycles_to_seconds(cycles)
    return total


def calibrate_app(
    app: AppSpec,
    machine: Machine,
    num_threads: int = 48,
    min_rate: float = 5.0e6,
) -> OpModel:
    """Build the operation model of ``app`` on ``machine``.

    Args:
        app: the application (with its Table 1 interconnect loads).
        machine: the hardware the rate is inverted against.
        num_threads: thread count of the measured configuration.
        min_rate: floor on the machine-wide access rate (an application
            with a negligible measured load still touches memory).
    """
    n = machine.num_nodes
    r4k_secs = _max_link_seconds_per_access(machine, _round4k_matrix(n))
    ft_secs = _max_link_seconds_per_access(
        machine, _first_touch_matrix(n, app.master_share)
    )
    estimates = []
    if r4k_secs > 0:
        estimates.append(app.r4k_interconnect / r4k_secs)
    if ft_secs > 0:
        estimates.append(app.ft_interconnect / ft_secs)
    rate = max(estimates) if estimates else min_rate
    rate = max(rate, min_rate)

    # Per-thread uncontended rate under round-4K placement fixes cpu_seconds.
    uniform_dest = np.full(n, 1.0 / n)
    mem_r4k = uncontended_mem_seconds(machine, uniform_dest)
    per_thread_rate = rate / num_threads
    cpu_seconds = max(0.0, 1.0 / per_thread_rate - mem_r4k)

    # Work target: the nominal runtime with perfect local placement.
    local_dest = np.zeros(n)
    local_dest[0] = 1.0
    mem_local = uncontended_mem_seconds(machine, local_dest)
    ideal_rate = 1.0 / (cpu_seconds + mem_local)
    ops_per_thread = app.baseline_seconds * ideal_rate

    total_ops = ops_per_thread * num_threads
    total_io_bytes = app.disk_mb_s * 1e6 * app.baseline_seconds
    io_bytes_per_op = total_io_bytes / total_ops if total_ops > 0 else 0.0

    return OpModel(
        cpu_seconds=cpu_seconds,
        mem_refs_per_op=1.0,
        access_rate_48t=rate,
        ops_per_thread=ops_per_thread,
        io_bytes_per_op=io_bytes_per_op,
    )
