"""Declarative run requests with stable, content-addressed cache keys.

A :class:`RunRequest` is the full identity of one engine invocation — the
environment (native Linux or a Xen feature set), the virtual machines (one
:class:`VmRequest` per domU; native runs have exactly one), and the
:class:`~repro.config.SimConfig` fields that can change results. It is a
frozen dataclass of primitives, so it pickles across process boundaries
(the parallel runner ships requests to workers, which rebuild the world
from scratch) and serializes to a *canonical* JSON form whose SHA-256
digest is a stable cache key:

* key order never matters — the canonical dump sorts keys;
* every field is serialized explicitly, defaults included, so adding a
  new request field with a default changes the canonical form (and the
  key) *visibly* rather than by accident;
* the config part comes from :meth:`SimConfig.result_fields`, which
  excludes check-only knobs (``sanitize_p2m``) — toggling those must hit
  the same cached runs.

Construction validates against :class:`~repro.errors.RunSpecError`, so a
malformed request fails when a scenario *declares* it, not epochs deep
into a worker process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.config import SimConfig, DEFAULT_CONFIG
from repro.errors import RunSpecError

#: Valid environment discriminators. ``cluster`` is a multi-host Xen
#: deployment: the executor boots a fixed two-host cluster, places the
#: VMs through the placement scheduler and live-migrates the first VM
#: (see :mod:`repro.cluster`); everything else about the request — the
#: feature set, the per-VM policies — reads exactly like ``xen``.
ENVIRONMENTS = ("linux", "xen", "cluster")

#: Policies the native Linux kernel offers (Figure 2's static bases).
LINUX_POLICIES = ("first-touch", "round-4k")

#: Policies the hypervisor interface offers (Figure 7 plus the boot default).
XEN_POLICIES = ("round-1g", "round-4k", "first-touch")

#: Xen feature-set names (:data:`repro.hypervisor.xen.XEN` / ``XEN_PLUS``).
XEN_FEATURE_SETS = ("Xen", "Xen+")


def _tuple_or_none(value: Optional[Sequence[int]]) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class VmRequest:
    """One application slot of a run request.

    In a native-Linux request this describes the single process (``policy``
    is a Linux policy; ``mcs_locks`` selects the LinuxNUMA lock variant).
    In a Xen request it describes one domU (``policy`` is the hypervisor
    policy base; pinning/placement mirror :class:`repro.sim.environment.VmSpec`).
    """

    app: str
    policy: str = "round-4k"
    carrefour: bool = False
    mcs_locks: bool = False
    num_vcpus: Optional[int] = None
    home_nodes: Optional[Tuple[int, ...]] = None
    pin_pcpus: Optional[Tuple[int, ...]] = None
    memory_pages: Optional[int] = None

    def __post_init__(self):
        if not self.app:
            raise RunSpecError("VmRequest needs an application name")
        # Accept any integer sequence for the placement fields but store
        # canonical tuples, so equal requests hash and pickle identically.
        object.__setattr__(self, "home_nodes", _tuple_or_none(self.home_nodes))
        object.__setattr__(self, "pin_pcpus", _tuple_or_none(self.pin_pcpus))

    def to_json(self) -> Dict:
        """All fields, defaults included (tuples become lists)."""
        return {
            "app": self.app,
            "policy": self.policy,
            "carrefour": self.carrefour,
            "mcs_locks": self.mcs_locks,
            "num_vcpus": self.num_vcpus,
            "home_nodes": None if self.home_nodes is None else list(self.home_nodes),
            "pin_pcpus": None if self.pin_pcpus is None else list(self.pin_pcpus),
            "memory_pages": self.memory_pages,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "VmRequest":
        try:
            return cls(
                app=payload["app"],
                policy=payload.get("policy", "round-4k"),
                carrefour=bool(payload.get("carrefour", False)),
                mcs_locks=bool(payload.get("mcs_locks", False)),
                num_vcpus=payload.get("num_vcpus"),
                home_nodes=payload.get("home_nodes"),
                pin_pcpus=payload.get("pin_pcpus"),
                memory_pages=payload.get("memory_pages"),
            )
        except (KeyError, TypeError) as exc:
            raise RunSpecError(f"cannot rebuild VmRequest from {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class RunRequest:
    """The identity of one engine invocation (one world, 1..n VMs)."""

    environment: str
    vms: Tuple[VmRequest, ...]
    features: str = ""
    unbatched_hypercalls: bool = False
    config: SimConfig = DEFAULT_CONFIG

    def __post_init__(self):
        object.__setattr__(self, "vms", tuple(self.vms))
        if self.environment not in ENVIRONMENTS:
            raise RunSpecError(
                f"unknown environment {self.environment!r}; expected one of {ENVIRONMENTS}"
            )
        if not self.vms:
            raise RunSpecError("a run request needs at least one VM/application")
        if self.environment == "linux":
            self._validate_linux()
        elif self.environment == "cluster":
            self._validate_cluster()
        else:
            self._validate_xen()

    # ------------------------------------------------------------------

    def _validate_linux(self) -> None:
        if self.features:
            raise RunSpecError("native Linux requests take no Xen feature set")
        if self.unbatched_hypercalls:
            raise RunSpecError("unbatched_hypercalls is a Xen-only knob")
        if len(self.vms) != 1:
            raise RunSpecError("native Linux requests run exactly one application")
        vm = self.vms[0]
        if vm.policy not in LINUX_POLICIES:
            raise RunSpecError(
                f"unknown Linux policy {vm.policy!r}; expected one of {LINUX_POLICIES}"
            )
        if vm.num_vcpus is not None or vm.home_nodes is not None or vm.pin_pcpus is not None:
            raise RunSpecError("vCPU/placement overrides are Xen-only fields")
        if vm.memory_pages is not None:
            raise RunSpecError("memory_pages is a Xen-only field")

    def _validate_xen(self) -> None:
        if self.features not in XEN_FEATURE_SETS:
            raise RunSpecError(
                f"unknown Xen feature set {self.features!r}; expected one of {XEN_FEATURE_SETS}"
            )
        for vm in self.vms:
            if vm.policy not in XEN_POLICIES:
                raise RunSpecError(
                    f"unknown Xen policy {vm.policy!r}; expected one of {XEN_POLICIES}"
                )
            if vm.carrefour and vm.policy == "round-1g":
                raise RunSpecError("Carrefour does not run on top of round-1g")
            if vm.mcs_locks:
                raise RunSpecError(
                    "MCS locks in a domU are a feature-set property (Xen+), "
                    "not a per-VM request field"
                )

    def _validate_cluster(self) -> None:
        # A cluster request is a Xen request deployed across hosts: the
        # same feature-set and per-VM policy vocabulary applies, and the
        # first VM is the one the executor live-migrates.
        self._validate_xen()
        if self.unbatched_hypercalls:
            raise RunSpecError(
                "unbatched_hypercalls is a single-host ablation knob; "
                "cluster requests always use the batched queue"
            )

    # ------------------------------------------------------------------
    # Canonical serialization and the cache key

    def to_json(self) -> Dict:
        """All fields, defaults included; nested VMs and config expanded."""
        return {
            "environment": self.environment,
            "features": self.features,
            "unbatched_hypercalls": self.unbatched_hypercalls,
            "vms": [vm.to_json() for vm in self.vms],
            "config": self.config.result_fields(),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RunRequest":
        try:
            config = SimConfig(**payload.get("config", {}))
            return cls(
                environment=payload["environment"],
                vms=tuple(VmRequest.from_json(vm) for vm in payload["vms"]),
                features=payload.get("features", ""),
                unbatched_hypercalls=bool(payload.get("unbatched_hypercalls", False)),
                config=config,
            )
        except (KeyError, TypeError) as exc:
            raise RunSpecError(f"cannot rebuild RunRequest: {exc}") from exc

    def canonical(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the hashed form."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def cache_key(self) -> str:
        """Stable content hash of the canonical form (hex SHA-256)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs and progress output."""
        apps = "+".join(vm.app for vm in self.vms)
        policies = "+".join(
            vm.policy + ("/carrefour" if vm.carrefour else "") for vm in self.vms
        )
        env = self.features if self.environment == "xen" else "Linux"
        return f"{env}:{apps}:{policies}"
