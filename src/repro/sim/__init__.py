"""Epoch-based simulation engine and the Linux/Xen environments."""

from repro.sim.placement import SegmentPlacement, PlacementTracker
from repro.sim.calibration import OpModel, calibrate_app
from repro.sim.results import RunResult, EpochRecord
from repro.sim.environment import (
    Environment,
    LinuxEnvironment,
    XenEnvironment,
    VmSpec,
)
from repro.sim.engine import run_app, run_apps

__all__ = [
    "SegmentPlacement",
    "PlacementTracker",
    "OpModel",
    "calibrate_app",
    "RunResult",
    "EpochRecord",
    "Environment",
    "LinuxEnvironment",
    "XenEnvironment",
    "VmSpec",
    "run_app",
    "run_apps",
]
