"""The epoch-based simulation engine.

Each epoch:

1. every active thread's operation rate is solved together with the
   machine congestion it creates (a short fixed-point iteration:
   operation rates -> access matrix -> controller/link utilisation ->
   memory latencies -> operation rates);
2. work is committed per thread, with interpolated finish times;
3. the traffic is recorded on the hardware counters, per-application
   metrics (imbalance, interconnect load — the Table 1 definitions) are
   archived;
4. dynamic policies receive their counter observation and may migrate
   pages (whose cost is charged to the next epoch);
5. a mechanical sample of the page churn runs through the real
   allocator/queue/fault machinery.

Completion time of an application is its initialisation time plus the
(interpolated) instant its slowest thread reaches the work target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.counters import CACHE_LINE_BYTES
from repro.hardware.machine import Machine
from repro.sim.instance import AppRun
from repro.sim.results import EpochRecord, RunResult
from repro.sim.environment import Environment, World

#: Fixed-point iterations per epoch (rates vs congestion). The queueing
#: curve is steep past the knee, so the solver needs a few damped rounds.
SOLVER_ITERATIONS = 8
#: Damping of the latency update between iterations (avoids oscillation
#: around the saturation knee).
SOLVER_DAMPING = 0.5
#: Default epoch cap (a run 15x slower than nominal still completes).
DEFAULT_MAX_EPOCHS = 800


class CongestionSolver:
    """Turns an access matrix into per-(src, dst) memory latencies."""

    def __init__(self, machine: Machine):
        self.machine = machine
        n = machine.num_nodes
        topo = machine.topology
        self.num_nodes = n
        self.hops = np.array(
            [[topo.hops(s, d) for d in range(n)] for s in range(n)]
        )
        links = list(topo.links)
        self._link_index = {l.key: i for i, l in enumerate(links)}
        self.link_bw = np.array([l.bandwidth_gib_s * (1 << 30) for l in links])
        self.controller_bw = topo.memory_controller_gib_s * (1 << 30)
        self.route_links: Dict[Tuple[int, int], List[int]] = {}
        for s in range(n):
            for d in range(n):
                self.route_links[(s, d)] = [
                    self._link_index[l.key] for l in topo.route(s, d)
                ]

    def congestion(self, matrix: np.ndarray, seconds: float) -> Tuple[np.ndarray, np.ndarray]:
        """Controller and link utilisations for ``matrix`` over ``seconds``."""
        col_bytes = matrix.sum(axis=0) * CACHE_LINE_BYTES
        rho_c = col_bytes / (self.controller_bw * seconds)
        link_bytes = np.zeros(len(self.link_bw))
        for s in range(self.num_nodes):
            for d in range(self.num_nodes):
                if s == d:
                    continue
                traffic = matrix[s, d] * CACHE_LINE_BYTES
                if traffic == 0:
                    continue
                for li in self.route_links[(s, d)]:
                    link_bytes[li] += traffic
        rho_l = link_bytes / (self.link_bw * seconds)
        return rho_c, rho_l

    def latency_matrix(
        self, rho_c: np.ndarray, rho_l: np.ndarray
    ) -> np.ndarray:
        """Per-(src, dst) access latency in *seconds* under congestion.

        Utilisations are scaled by the configured traffic burstiness: the
        queueing happens at the traffic peaks, not at the epoch average.
        """
        model = self.machine.latency
        burst = self.machine.config.traffic_burstiness
        n = self.num_nodes
        out = np.zeros((n, n))
        for s in range(n):
            for d in range(n):
                route = self.route_links[(s, d)]
                link_rho = max((rho_l[li] for li in route), default=0.0)
                cycles = model.memory_latency_cycles(
                    int(self.hops[s, d]),
                    float(rho_c[d]) * burst,
                    float(link_rho) * burst,
                )
                out[s, d] = model.cycles_to_seconds(cycles)
        return out


def _thread_arrays(run: AppRun) -> Tuple[np.ndarray, np.ndarray]:
    shares = np.array([t.cpu_share for t in run.threads])
    return shares, np.array([t.tid for t in run.threads])


def _compute_ops(
    run: AppRun,
    D: np.ndarray,
    src: np.ndarray,
    active: np.ndarray,
    latm_seconds: np.ndarray,
    epoch_seconds: float,
) -> np.ndarray:
    """Operations each thread completes this epoch under given latencies."""
    ctx = run.context
    shares = np.array([t.cpu_share for t in run.threads])
    lat_rows = latm_seconds[src]
    mem_s = (D * lat_rows).sum(axis=1)
    tlb_s = getattr(ctx, "tlb_seconds_per_op", 0.0)
    time_per_op = (
        run.op_model.cpu_seconds + mem_s + tlb_s + ctx.io_seconds_per_op
    )
    avail = (
        epoch_seconds
        * shares
        * (1.0 - ctx.sync_fraction)
        / ctx.churn_slowdown
    )
    # Dynamic-policy overhead from the previous epoch stalls the domain.
    avail = np.maximum(0.0, avail - run.pending_policy_cost)
    ops = np.where(active, avail / time_per_op, 0.0)
    return ops


def _per_run_matrix(
    D: np.ndarray, src: np.ndarray, ops: np.ndarray, num_nodes: int
) -> np.ndarray:
    matrix = np.zeros((num_nodes, num_nodes))
    np.add.at(matrix, src, D * ops[:, None])
    return matrix


def run_world(world: World, max_epochs: int = DEFAULT_MAX_EPOCHS) -> List[RunResult]:
    """Simulate a world to completion; returns one result per app run."""
    machine = world.machine
    solver = CongestionSolver(machine)
    n = machine.num_nodes
    epoch_seconds = world.epoch_seconds

    for run in world.runs:
        run.initialize()

    latm = solver.latency_matrix(np.zeros(n), np.zeros(len(solver.link_bw)))
    now = 0.0
    epoch = 0
    truncated = set()
    while epoch < max_epochs:
        for hook in world.epoch_hooks.get(epoch, ()):
            hook(world)
        active_runs = [r for r in world.runs if not r.finished]
        if not active_runs:
            break
        # ---- fixed point: rates vs congestion
        per_run: List[Tuple[AppRun, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        rho_c = np.zeros(n)
        rho_l = np.zeros(len(solver.link_bw))
        for _ in range(SOLVER_ITERATIONS):
            total = np.zeros((n, n))
            per_run = []
            for run in active_runs:
                D, src, active = run.destination_matrix(n)
                ops = _compute_ops(run, D, src, active, latm, epoch_seconds)
                total += _per_run_matrix(D, src, ops, n)
                per_run.append((run, D, src, active, ops))
            rho_c, rho_l = solver.congestion(total, epoch_seconds)
            latm = (
                SOLVER_DAMPING * latm
                + (1.0 - SOLVER_DAMPING) * solver.latency_matrix(rho_c, rho_l)
            )

        # ---- commit work, record traffic and metrics
        total = np.zeros((n, n))
        for run, D, src, active, ops in per_run:
            run.commit_work(ops, now, epoch_seconds)
            matrix = _per_run_matrix(D, src, ops, n)
            total += matrix
            run_rho_c, run_rho_l = solver.congestion(matrix, epoch_seconds)
            ops_by_node = np.zeros(n)
            np.add.at(ops_by_node, src, ops)
            observation = run.build_observation(
                access_matrix=matrix,
                controller_rho=rho_c,
                max_link_rho=float(rho_l.max()) if len(rho_l) else 0.0,
                epoch_seconds=epoch_seconds,
                ops_by_node=ops_by_node,
            )
            cost = run.context.policy_on_epoch(run, observation)
            run.pending_policy_cost = cost
            migrations = 0
            if run.context.policy_is_dynamic:
                migrations = _migrations_of(run)
            run.records.append(
                EpochRecord(
                    epoch=epoch,
                    ops_done=float(ops.sum()),
                    imbalance=observation.imbalance,
                    max_link_rho=float(run_rho_l.max()) if len(run_rho_l) else 0.0,
                    local_fraction=observation.local_fraction,
                    policy_cost_seconds=cost,
                    migrations=migrations,
                )
            )
            run.churn_step()
        machine.record_node_traffic(total)
        machine.end_epoch()
        now += epoch_seconds
        epoch += 1

    results: List[RunResult] = []
    for run in world.runs:
        if run.finished:
            finish = max(t.finish_time for t in run.threads)
        else:
            finish = now
            truncated.add(run.app.name)
        completion = run.init_seconds + finish
        stats = {
            "init_seconds": run.init_seconds,
            "truncated": 1.0 if run.app.name in truncated else 0.0,
            "sync_fraction": run.context.sync_fraction,
            "churn_slowdown": run.context.churn_slowdown,
            "io_seconds_per_op": run.context.io_seconds_per_op,
        }
        results.append(
            RunResult(
                app=run.app.name,
                environment=world.label,
                policy=run.context.policy_label,
                completion_seconds=completion,
                epochs=epoch,
                records=run.records,
                stats=stats,
            )
        )
    world.teardown()
    return results


def _migrations_of(run: AppRun) -> int:
    """Pages the dynamic policy moved in its last iteration."""
    context = run.context
    policy = getattr(context, "domain", None)
    if policy is not None:  # Xen mode
        numa_policy = context.domain.numa_policy
        engine = getattr(numa_policy, "engine", None)
    else:  # Linux mode
        engine = getattr(context.numa_mode, "engine", None)
    if engine is None or not engine.history:
        return 0
    return engine.history[-1].applied


def run_apps(env: Environment, specs: Sequence, max_epochs: int = DEFAULT_MAX_EPOCHS) -> List[RunResult]:
    """Set up ``env`` with ``specs`` and simulate to completion."""
    world = env.setup(specs)
    return run_world(world, max_epochs=max_epochs)


def run_app(env: Environment, spec, max_epochs: int = DEFAULT_MAX_EPOCHS) -> RunResult:
    """Single-application convenience wrapper."""
    return run_apps(env, [spec], max_epochs=max_epochs)[0]
