"""The epoch-based simulation engine.

Each epoch:

1. every active thread's operation rate is solved together with the
   machine congestion it creates (a short fixed-point iteration:
   operation rates -> access matrix -> controller/link utilisation ->
   memory latencies -> operation rates);
2. work is committed per thread, with interpolated finish times;
3. the traffic is recorded on the hardware counters, per-application
   metrics (imbalance, interconnect load — the Table 1 definitions) are
   archived;
4. dynamic policies receive their counter observation and may migrate
   pages (whose cost is charged to the next epoch);
5. a mechanical sample of the page churn runs through the real
   allocator/queue/fault machinery.

Completion time of an application is its initialisation time plus the
(interpolated) instant its slowest thread reaches the work target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.hardware.counters import CACHE_LINE_BYTES
from repro.hardware.machine import Machine
from repro.sim.instance import AppRun
from repro.sim.results import EpochRecord, RunResult
from repro.sim.environment import Environment, World

#: Fixed-point iterations per epoch (rates vs congestion). The queueing
#: curve is steep past the knee, so the solver needs a few damped rounds.
SOLVER_ITERATIONS = 8
#: Damping of the latency update between iterations (avoids oscillation
#: around the saturation knee).
SOLVER_DAMPING = 0.5
#: Early-exit threshold for the fixed-point solve: remaining iterations
#: are skipped once the damped latency matrix moves by at most this much
#: (max |delta|, seconds) between rounds. The default 0.0 skips only on an
#: *exact* fixed point — an exact fixed point reproduces itself, so the
#: skipped iterations could not have changed anything and results stay
#: bit-for-bit identical to the full 8 rounds.
SOLVER_EPSILON = 0.0
#: Default epoch cap (a run 15x slower than nominal still completes).
DEFAULT_MAX_EPOCHS = 800

#: Version stamp of the engine's *numerical behaviour*. Bump it whenever a
#: change makes previously simulated results stale (solver changes, cost
#: model recalibration, workload model edits): persistent run stores
#: (:mod:`repro.runstore`) compare this against the version recorded on
#: disk and drop every stored run on a mismatch.
ENGINE_VERSION = "3"


class CongestionSolver:
    """Turns an access matrix into per-(src, dst) memory latencies.

    The hot path is fully vectorized: a dense link-routing matrix
    ``R[(src, dst), link]`` (exported by the topology) turns
    :meth:`congestion` into two matrix products, and the ndarray-aware
    latency model turns :meth:`latency_matrix` into one broadcast
    expression. ``route_links`` is kept as the loop-friendly view of the
    same routing tables (the perfbench loop-oracle iterates it).
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        n = machine.num_nodes
        topo = machine.topology
        self.num_nodes = n
        self.hops = np.array(
            [[topo.hops(s, d) for d in range(n)] for s in range(n)]
        )
        links = list(topo.links)
        self._link_index = {l.key: i for i, l in enumerate(links)}
        self.link_bw = np.array([l.bandwidth_gib_s * (1 << 30) for l in links])
        self.controller_bw = topo.memory_controller_gib_s * (1 << 30)
        self.route_links: Dict[Tuple[int, int], List[int]] = {}
        for s in range(n):
            for d in range(n):
                self.route_links[(s, d)] = [
                    self._link_index[l.key] for l in topo.route(s, d)
                ]
        #: R[src * n + dst, link] == 1.0 iff the link lies on route
        #: (src, dst); link order matches ``link_bw``.
        self.route_matrix = topo.route_link_matrix()
        self._zero_latm: Optional[np.ndarray] = None
        # Hop-dependent latency-model terms are constant per topology:
        # precompute them once so the batched per-iteration path skips
        # the table lookups (identical arrays, so identical bits).
        model = machine.latency
        self._lat_base, self._lat_coeff = model.hop_coefficients(self.hops)
        self._hops_zero = self.hops == 0

    def congestion(self, matrix: np.ndarray, seconds: float) -> Tuple[np.ndarray, np.ndarray]:
        """Controller and link utilisations for ``matrix`` over ``seconds``."""
        col_bytes = matrix.sum(axis=0) * CACHE_LINE_BYTES
        rho_c = col_bytes / (self.controller_bw * seconds)
        link_bytes = (matrix.reshape(-1) * CACHE_LINE_BYTES) @ self.route_matrix
        rho_l = link_bytes / (self.link_bw * seconds)
        return rho_c, rho_l

    def congestion_many(
        self, stacked: np.ndarray, seconds: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`congestion` over a ``(W, n, n)`` stack of access matrices.

        Per-world results are bit-identical to calling :meth:`congestion`
        on each slice: the column reduction runs over the same length-n
        axis with the same (sequential) accumulation order, and the
        link-routing product is issued per world on a contiguous copy of
        the slice — the exact vector-matrix call shape of the scalar
        path, so the BLAS kernel (and its summation order) is the same.
        """
        col_bytes = stacked.sum(axis=1) * CACHE_LINE_BYTES
        rho_c = col_bytes / (self.controller_bw * seconds)
        worlds = stacked.shape[0]
        # One elementwise multiply for the whole stack (same bits as
        # multiplying each slice), then the scalar path's exact
        # vector-matrix call per world on a contiguous row.
        flat_bytes = stacked.reshape(worlds, -1) * CACHE_LINE_BYTES
        link_bytes = np.empty((worlds, len(self.link_bw)))
        for w in range(worlds):
            link_bytes[w] = flat_bytes[w] @ self.route_matrix
        rho_l = link_bytes / (self.link_bw * seconds)
        return rho_c, rho_l

    def latency_matrix_many(
        self, rho_c: np.ndarray, rho_l: np.ndarray
    ) -> np.ndarray:
        """:meth:`latency_matrix` over per-world ``(W, n)`` / ``(W, links)``.

        The latency model is elementwise over broadcast inputs, so adding
        a leading world axis changes which elements are computed together
        but not any individual float operation. The zero-congestion memo
        of the scalar path is itself computed by this same expression,
        so skipping it here cannot change a bit.

        The body inlines :meth:`LatencyModel.memory_latency_cycles` with
        the hop tables precomputed at solver construction: every float
        operation (and its order) matches the model methods exactly, so
        the per-world result stays bit-identical to the scalar path —
        this is the innermost line of the batched fixed point, called
        ``SOLVER_ITERATIONS`` times per group epoch.
        """
        model = self.machine.latency
        burst = self.machine.config.traffic_burstiness
        n = self.num_nodes
        worlds = rho_c.shape[0]
        if self.route_matrix.size:
            route_rho = (
                (self.route_matrix * rho_l[:, np.newaxis, :])
                .max(axis=2)
                .reshape(worlds, n, n)
            )
        else:
            route_rho = np.zeros((worlds, n, n))
        rho_cb = rho_c[:, np.newaxis, :] * burst
        congestion = np.where(
            self._hops_zero, rho_cb, np.maximum(rho_cb, route_rho * burst)
        )
        # queueing(), with the knee constants folded (same formulas on
        # the same scalars yield the same floats every call).
        cap = model.rho_cap
        rho = np.maximum(congestion, 0.0)
        clamped = np.minimum(rho, cap)
        q = np.where(
            rho <= cap,
            clamped / (1.0 - clamped),
            cap / (1.0 - cap) + (1.0 / (1.0 - cap) ** 2) * (rho - cap),
        )
        cycles = self._lat_base + self._lat_coeff * q
        return cycles / (model.freq_ghz * 1e9)

    def solve_many(
        self, stacked: np.ndarray, seconds: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One batched congestion + latency pass over stacked worlds.

        Returns ``(rho_c, rho_l, latm)`` with a leading world axis each —
        the per-iteration work of the multi-run fixed point
        (:mod:`repro.core.multirun`) as one numpy program.
        """
        rho_c, rho_l = self.congestion_many(stacked, seconds)
        return rho_c, rho_l, self.latency_matrix_many(rho_c, rho_l)

    def latency_matrix(
        self, rho_c: np.ndarray, rho_l: np.ndarray
    ) -> np.ndarray:
        """Per-(src, dst) access latency in *seconds* under congestion.

        Utilisations are scaled by the configured traffic burstiness: the
        queueing happens at the traffic peaks, not at the epoch average.

        The zero-congestion matrix (the idle machine, requested at every
        engine start-up) is memoized and returned *read-only* — a caller
        mutating the shared memo would silently corrupt every later
        epoch's solver start state, so NumPy now enforces what the old
        docstring only asked for.
        """
        if not rho_c.any() and not rho_l.any():
            if self._zero_latm is None:
                memo = self._solve_latencies(rho_c, rho_l)
                memo.setflags(write=False)
                self._zero_latm = memo
            return self._zero_latm
        return self._solve_latencies(rho_c, rho_l)

    def _solve_latencies(
        self, rho_c: np.ndarray, rho_l: np.ndarray
    ) -> np.ndarray:
        model = self.machine.latency
        burst = self.machine.config.traffic_burstiness
        n = self.num_nodes
        if self.route_matrix.size:
            # Max utilisation along each route; all-zero rows (local
            # accesses) reduce to 0.0 exactly as the loop's default did.
            route_rho = (self.route_matrix * rho_l).max(axis=1).reshape(n, n)
        else:
            route_rho = np.zeros((n, n))
        cycles = model.memory_latency_cycles(
            self.hops,
            rho_c[np.newaxis, :] * burst,
            route_rho * burst,
        )
        return model.cycles_to_seconds(cycles)


def _compute_ops(
    run: AppRun,
    D: np.ndarray,
    src: np.ndarray,
    active: np.ndarray,
    latm_seconds: np.ndarray,
    epoch_seconds: float,
) -> np.ndarray:
    """Operations each thread completes this epoch under given latencies."""
    ctx = run.context
    shares = np.array([t.cpu_share for t in run.threads])
    lat_rows = latm_seconds[src]
    mem_s = (D * lat_rows).sum(axis=1)
    tlb_s = getattr(ctx, "tlb_seconds_per_op", 0.0)
    time_per_op = (
        run.op_model.cpu_seconds + mem_s + tlb_s + ctx.io_seconds_per_op
    )
    avail = (
        epoch_seconds
        * shares
        * (1.0 - ctx.sync_fraction)
        / ctx.churn_slowdown
    )
    # Dynamic-policy overhead from the previous epoch stalls the domain.
    avail = np.maximum(0.0, avail - run.pending_policy_cost)
    ops = np.where(active, avail / time_per_op, 0.0)
    return ops


def _per_run_matrix(
    D: np.ndarray, src: np.ndarray, ops: np.ndarray, num_nodes: int
) -> np.ndarray:
    matrix = np.zeros((num_nodes, num_nodes))
    np.add.at(matrix, src, D * ops[:, None])
    return matrix


class EpochStepper:
    """Per-world engine state, advanced one epoch at a time.

    The engine loop used to live entirely inside :func:`run_world`, with
    the machine, solver and latency state as locals — which made a world
    an implicit singleton of its invocation. The stepper holds exactly
    that state per *instance*, so several worlds (one per cluster host)
    can advance in lockstep on one shared simulated clock while
    :func:`run_world` stays the single-host driver with bit-identical
    results.

    Usage: construct, :meth:`initialize`, then call :meth:`step` with the
    current simulated time until it returns False (no active runs) or an
    external epoch cap is reached, and collect results via :meth:`finish`.
    """

    def __init__(
        self,
        world: World,
        solver_epsilon: Optional[float] = SOLVER_EPSILON,
    ):
        self.world = world
        self.machine = world.machine
        self.solver = CongestionSolver(self.machine)
        self.num_nodes = self.machine.num_nodes
        self.epoch_seconds = world.epoch_seconds
        self.solver_epsilon = solver_epsilon
        # Observability: metric cells registered with the active session
        # (no session: cells are created but never collected) and trace
        # emission guarded by one boolean so the disabled path costs
        # nothing. All trace timestamps come from the simulated clock —
        # never the wall clock — so identical requests yield
        # byte-identical traces.
        reg = obs.registry()
        self.tracer = obs.tracer()
        self._trace_on = self.tracer.enabled
        if reg.enabled:
            self._epoch_cells = (
                reg.counter("engine.epochs", world=world.label),
                reg.histogram("engine.solver_iterations", world=world.label),
            )
        else:
            self._epoch_cells = None
        self.epoch = 0
        self._latm: Optional[np.ndarray] = None

    @property
    def latm(self) -> Optional[np.ndarray]:
        """The damped latency matrix carried across epochs.

        This is the solver state a batched driver
        (:mod:`repro.core.multirun`) stacks across worlds and writes back
        after each group epoch; ``None`` until :meth:`initialize` ran.
        """
        return self._latm

    @latm.setter
    def latm(self, value: np.ndarray) -> None:
        """Adopt ``value`` as the carried matrix; ``value`` is mutated in
        place by ``setflags(write=False)``. The getter hands out the
        stored array itself, and a caller scribbling on it would corrupt
        the next epoch's solver start state (the PR 5 latency-memo bug
        class), so the stepper freezes what it adopts."""
        value.setflags(write=False)
        self._latm = value

    def initialize(self) -> None:
        """First-touch every run's pages and seed the idle latency matrix."""
        for run in self.world.runs:
            run.initialize()
        self._latm = self.solver.latency_matrix(
            np.zeros(self.num_nodes), np.zeros(len(self.solver.link_bw))
        )

    def has_active_runs(self) -> bool:
        """Whether any run still needs epochs (migrations can add some)."""
        return any(not r.finished for r in self.world.runs)

    def idle_step(self, now: float) -> None:
        """Advance the clock on a world with nothing to run.

        Cluster lockstep uses this to keep an evacuated (or not yet
        populated) host's epoch counter aligned with its peers, so a run
        migrating onto it continues with coherent epoch numbering.
        """
        self.machine.end_epoch()
        self.epoch += 1

    def step(self, now: float) -> bool:
        """Simulate one epoch starting at ``now``.

        Returns False — without consuming an epoch — when no run is
        active (the single-host loop breaks; a cluster may instead keep
        the host idling). The caller advances its clock by
        :attr:`epoch_seconds` after every True return.
        """
        world = self.world
        machine = self.machine
        solver = self.solver
        n = self.num_nodes
        epoch_seconds = self.epoch_seconds
        tracer = self.tracer
        trace_on = self._trace_on
        epoch = self.epoch
        latm = self._latm

        tracer.set_time(now)
        for hook in world.epoch_hooks.get(epoch, ()):
            hook(world)
        active_runs = [r for r in world.runs if not r.finished]
        if not active_runs:
            return False
        # ---- fixed point: rates vs congestion
        # Placement is frozen while the solver iterates, so each run's
        # destination matrix is fetched once per epoch (and cached by the
        # run across epochs while churn leaves placement untouched).
        dests = [run.destination_matrix(n) for run in active_runs]
        per_run: List[Tuple[AppRun, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        rho_c = np.zeros(n)
        rho_l = np.zeros(len(solver.link_bw))
        iterations = 0
        delta = 0.0
        for _ in range(SOLVER_ITERATIONS):
            total = np.zeros((n, n))
            per_run = []
            for run, (D, src, active) in zip(active_runs, dests):
                ops = _compute_ops(run, D, src, active, latm, epoch_seconds)
                total += _per_run_matrix(D, src, ops, n)
                per_run.append((run, D, src, active, ops))
            rho_c, rho_l = solver.congestion(total, epoch_seconds)
            new_latm = (
                SOLVER_DAMPING * latm
                + (1.0 - SOLVER_DAMPING) * solver.latency_matrix(rho_c, rho_l)
            )
            delta = float(np.abs(new_latm - latm).max()) if latm.size else 0.0
            latm = new_latm
            iterations += 1
            if self.solver_epsilon is not None and delta <= self.solver_epsilon:
                break
        latm.setflags(write=False)
        self._latm = latm
        if self._epoch_cells is not None:
            self._epoch_cells[0].inc()
            self._epoch_cells[1].observe(iterations)
        if trace_on:
            tracer.span(
                "epoch.solve",
                epoch_seconds,
                cat="engine",
                epoch=epoch,
                iterations=iterations,
                early_exit_delta=delta,
                active_runs=len(active_runs),
            )

        # ---- commit work, record traffic and metrics
        # One rho_c array is shared by every run's observation this
        # epoch, and EpochRecord reads observation.imbalance *after* the
        # policy callback ran — freeze the observation inputs so policy
        # code cannot (even accidentally) mutate a sibling's view or its
        # own archived metrics through the alias.
        rho_c.setflags(write=False)
        total = np.zeros((n, n))
        for run, D, src, active, ops in per_run:
            run.commit_work(ops, now, epoch_seconds)
            matrix = _per_run_matrix(D, src, ops, n)
            total += matrix
            matrix.setflags(write=False)
            # The run's own *contribution* to the links, archived in its
            # EpochRecord; the observation below instead carries the
            # world-total utilisations — the congestion the run
            # *experiences* — because that is what hardware counters show
            # a per-domain policy.
            run_rho_l = solver.congestion(matrix, epoch_seconds)[1]
            ops_by_node = np.zeros(n)
            np.add.at(ops_by_node, src, ops)
            observation = run.build_observation(
                access_matrix=matrix,
                controller_rho=rho_c,
                max_link_rho=float(rho_l.max()) if len(rho_l) else 0.0,
                epoch_seconds=epoch_seconds,
                ops_by_node=ops_by_node,
            )
            cost = run.context.policy_on_epoch(run, observation)
            run.pending_policy_cost = cost
            migrations = 0
            if run.context.policy_is_dynamic:
                migrations = _migrations_of(run)
            run.records.append(
                EpochRecord(
                    epoch=epoch,
                    ops_done=float(ops.sum()),
                    imbalance=observation.imbalance,
                    max_link_rho=float(run_rho_l.max()) if len(run_rho_l) else 0.0,
                    local_fraction=observation.local_fraction,
                    policy_cost_seconds=cost,
                    migrations=migrations,
                )
            )
            if trace_on:
                tracer.instant(
                    "run.commit",
                    cat="engine",
                    app=run.app.name,
                    policy=run.context.policy_label,
                    epoch=epoch,
                    ops=float(ops.sum()),
                    policy_cost_seconds=cost,
                    migrations=migrations,
                )
            run.churn_step()
        machine.record_node_traffic(total)
        machine.end_epoch()
        self.epoch = epoch + 1
        return True

    def finish(self, now: float) -> List[RunResult]:
        """Assemble one result per run and tear the world down."""
        world = self.world
        epoch = self.epoch
        tracer = self.tracer
        trace_on = self._trace_on
        results: List[RunResult] = []
        tracer.set_time(now)
        for run in world.runs:
            # Truncation is per run identity, not per application name:
            # the paper's 2-VM setups run the same app twice, and one VM
            # timing out must not mark its twin truncated.
            run_truncated = not run.finished
            if run.finished:
                finish = max(t.finish_time for t in run.threads)
            else:
                finish = now
            completion = run.init_seconds + finish
            stats = {
                "init_seconds": run.init_seconds,
                "truncated": 1.0 if run_truncated else 0.0,
                "sync_fraction": run.context.sync_fraction,
                "churn_slowdown": run.context.churn_slowdown,
                "io_seconds_per_op": run.context.io_seconds_per_op,
            }
            # The transient observability snapshot of the run's context
            # (fault/queue/p2m/policy counters). Excluded from equality
            # and serialization, so stored results and reports are
            # unchanged.
            snapshot = getattr(run.context, "metrics_snapshot", None)
            metrics = snapshot() if snapshot is not None else {}
            if trace_on:
                tracer.instant(
                    "run.result",
                    cat="engine",
                    app=run.app.name,
                    policy=run.context.policy_label,
                    completion_seconds=completion,
                    epochs=epoch,
                    truncated=run_truncated,
                )
            results.append(
                RunResult(
                    app=run.app.name,
                    environment=world.label,
                    policy=run.context.policy_label,
                    completion_seconds=completion,
                    epochs=epoch,
                    records=run.records,
                    stats=stats,
                    metrics=metrics,
                )
            )
        world.teardown()
        return results


def run_world(
    world: World,
    max_epochs: int = DEFAULT_MAX_EPOCHS,
    solver_epsilon: Optional[float] = SOLVER_EPSILON,
) -> List[RunResult]:
    """Simulate a world to completion; returns one result per app run.

    Args:
        max_epochs: epoch cap; runs still unfinished at the cap are marked
            truncated (per run — two runs of the same application are
            tracked independently).
        solver_epsilon: early-exit threshold for the per-epoch fixed-point
            solve (see :data:`SOLVER_EPSILON`). ``None`` disables the
            early exit and always runs all :data:`SOLVER_ITERATIONS`.
    """
    stepper = EpochStepper(world, solver_epsilon=solver_epsilon)
    stepper.initialize()
    now = 0.0
    while stepper.epoch < max_epochs:
        if not stepper.step(now):
            break
        now += stepper.epoch_seconds
    return stepper.finish(now)


def _migrations_of(run: AppRun) -> int:
    """Pages the dynamic policy moved in its last iteration."""
    context = run.context
    policy = getattr(context, "domain", None)
    if policy is not None:  # Xen mode
        numa_policy = context.domain.numa_policy
        engine = getattr(numa_policy, "engine", None)
    else:  # Linux mode
        engine = getattr(context.numa_mode, "engine", None)
    if engine is None or not engine.history:
        return 0
    return engine.history[-1].applied


def run_apps(
    env: Environment,
    specs: Sequence,
    max_epochs: int = DEFAULT_MAX_EPOCHS,
    solver_epsilon: Optional[float] = SOLVER_EPSILON,
) -> List[RunResult]:
    """Set up ``env`` with ``specs`` and simulate to completion."""
    world = env.setup(specs)
    return run_world(world, max_epochs=max_epochs, solver_epsilon=solver_epsilon)


def run_app(
    env: Environment,
    spec,
    max_epochs: int = DEFAULT_MAX_EPOCHS,
    solver_epsilon: Optional[float] = SOLVER_EPSILON,
) -> RunResult:
    """Single-application convenience wrapper."""
    return run_apps(
        env, [spec], max_epochs=max_epochs, solver_epsilon=solver_epsilon
    )[0]
