"""Repeated-run statistics (the paper reports the average of 6 runs).

A single simulation is deterministic given its seed; the paper's
run-to-run variation is reproduced by re-running with different seeds
(which perturbs Carrefour's random interleaving, the burst noise and the
churn sampling) and averaging, exactly like the evaluation protocol.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.sim.results import RunResult


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregate of several seeded runs of one configuration.

    Attributes:
        runs: the individual results, in seed order.
        mean_seconds: average completion time.
        std_seconds: standard deviation of completion time.
    """

    runs: tuple
    mean_seconds: float
    std_seconds: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (run-to-run noise level)."""
        if self.mean_seconds == 0:
            return 0.0
        return self.std_seconds / self.mean_seconds

    @property
    def representative(self) -> RunResult:
        """The run closest to the mean (for metric inspection)."""
        return min(
            self.runs,
            key=lambda r: abs(r.completion_seconds - self.mean_seconds),
        )


def run_repeated(
    run_fn: Callable[[SimConfig], RunResult],
    config: Optional[SimConfig] = None,
    repeats: int = 6,
) -> RepeatedResult:
    """Run one configuration ``repeats`` times with distinct seeds.

    Args:
        run_fn: builds a fresh world from a config and runs it —
            typically ``lambda cfg: run_app(XenEnvironment(config=cfg),
            spec)``.
        config: base configuration (seed is replaced per repeat).
        repeats: number of runs (the paper uses 6).
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    base = config or SimConfig()
    runs: List[RunResult] = []
    for i in range(repeats):
        seeded = dataclasses.replace(base, rng_seed=base.rng_seed + 1000 * i)
        runs.append(run_fn(seeded))
    seconds = np.array([r.completion_seconds for r in runs])
    return RepeatedResult(
        runs=tuple(runs),
        mean_seconds=float(seconds.mean()),
        std_seconds=float(seconds.std()),
    )
