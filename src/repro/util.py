"""Small layer-neutral helpers shared across the stack.

Lives below every other package so that both the hypervisor layer and the
policy layer can use these without creating import cycles or reaching
through each other's internals (the `repro.lint` interface-encapsulation
rule forbids policies from importing hypervisor modules).
"""

from __future__ import annotations

import zlib
from typing import Sequence, Tuple, Union

import numpy as np


def accumulate_cost(start: float, cost: float, count: int) -> float:
    """``count`` sequential ``start += cost`` float adds, as one cumsum.

    ``np.cumsum`` accumulates sequentially left-to-right, so the final
    element is bit-identical to the scalar accumulation loop — the batch
    paths use this wherever a per-page cost feeds a float accumulator
    that the experiments read back.
    """
    if count <= 0:
        return start
    steps = np.empty(count + 1, dtype=np.float64)
    steps[0] = start
    steps[1:] = cost
    return float(np.cumsum(steps)[-1])

Hashable = Union[str, int, float, Tuple["Hashable", ...]]


def stable_hash(value: Hashable) -> int:
    """A deterministic 32-bit hash, independent of ``PYTHONHASHSEED``.

    The builtin :func:`hash` randomises string hashes per process, which
    silently breaks run reproducibility when used to derive RNG seeds
    (the `repro.lint` determinism rule flags it). This replacement is
    stable across processes and platforms.
    """
    if isinstance(value, tuple):
        data = "\x1f".join(str(v) for v in value)
    else:
        data = str(value)
    return zlib.crc32(data.encode("utf-8"))


class RoundRobin:
    """Round-robin cursor over a node tuple."""

    def __init__(self, nodes: Sequence[int]):
        if not nodes:
            raise ValueError("round robin needs at least one node")
        self._nodes = tuple(nodes)
        self._idx = 0

    def peek(self) -> int:
        return self._nodes[self._idx]

    def next(self) -> int:
        node = self._nodes[self._idx]
        self._idx = (self._idx + 1) % len(self._nodes)
        return node

    def next_many(self, count: int) -> Tuple[int, ...]:
        """The next ``count`` nodes, advancing the cursor past them.

        Equal to ``tuple(self.next() for _ in range(count))`` without the
        per-step calls; the batch population paths use it to compute a
        whole round-robin node pattern at once.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        nodes = self._nodes
        length = len(nodes)
        start = self._idx
        self._idx = (start + count) % length
        reps = (start + count + length - 1) // length
        return (nodes * max(reps, 1))[start : start + count]
