"""Figure 5: IPI cost repartition, native vs guest mode.

Sending an inter-processor interrupt costs ~0.9 us natively and ~10.9 us
in a virtual machine; the figure decomposes the guest cost into its
delivery steps (guest exit, virtual APIC emulation, vCPU lookup/kick,
re-entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.experiments.registry import Scenario, register
from repro.hypervisor.ipi import IpiModel
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest

#: The paper's measured totals (seconds).
PAPER_TOTALS = {"native": 0.9e-6, "guest": 10.9e-6}


@dataclass
class Fig5Result:
    totals: Dict[str, float]
    components: Dict[str, Dict[str, float]]

    @property
    def guest_native_ratio(self) -> float:
        return self.totals["guest"] / self.totals["native"]


def _reject_apps(apps: Optional[Sequence[str]]) -> None:
    if apps is not None:
        raise ExperimentError(
            "fig5 is a machine microbenchmark; it takes no application "
            f"selection (got {list(apps)!r})"
        )


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Figure 5 is analytic: it consumes no engine runs."""
    _reject_apps(apps)
    return []


def assemble(
    results: Optional[ResultSet] = None,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig5Result:
    """Build Figure 5 from the IPI model (``results`` unused)."""
    _reject_apps(apps)
    model = IpiModel()
    totals = {mode: model.cost(mode) for mode in ("native", "guest")}
    components = {
        mode: {c.name: c.seconds for c in model.components(mode)}
        for mode in ("native", "guest")
    }
    result = Fig5Result(totals=totals, components=components)
    if verbose:
        for mode in ("native", "guest"):
            rows = [
                [name, f"{seconds * 1e6:.2f} us", f"{seconds / totals[mode] * 100:.0f}%"]
                for name, seconds in components[mode].items()
            ]
            rows.append(["total", f"{totals[mode] * 1e6:.2f} us", "100%"])
            print(
                format_table(
                    ["step", "cost", "share"],
                    rows,
                    title=f"Figure 5 - IPI cost repartition ({mode}; "
                    f"paper total {PAPER_TOTALS[mode] * 1e6:.1f} us)",
                )
            )
            print()
        print(f"> guest/native cost ratio: {result.guest_native_ratio:.1f}x")
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig5Result:
    """Regenerate Figure 5 from the IPI model.

    Raises:
        ExperimentError: ``apps`` is not None — there is nothing
            per-application here, so a selection is a caller bug, not
            something to ignore silently.
    """
    _reject_apps(apps)
    return assemble(None, apps=None, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig5",
        description="IPI cost repartition, native vs guest (microbenchmark)",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
