"""Cluster scenario: evacuate a host with pre-copy live migration.

Two hosts, two VMs. The placement scheduler spreads the VMs (one per
host); at a fixed epoch the first VM's host is evacuated — the VM
live-migrates to the other host with the write-protect → dirty-fault →
re-copy protocol (:mod:`repro.cluster.migration`) and finishes there,
rebalancing the cluster onto a single host. The baseline is the same
two VMs booted colocated on one host from the start: the figure shows
what the evacuation costs each VM relative to having been consolidated
all along (pre-copy rounds, dirty-set convergence, cutover downtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest, VmRequest

#: The default VM pair: the first-named VM is the one that migrates.
DEFAULT_APPS = ("streamcluster", "facesim")


@dataclass
class ClusterMigrationResult:
    """Per-app completion times, cluster vs colocated, plus protocol stats.

    Attributes:
        completion: ``app -> {"colocated": s, "evacuated": s}``.
        worlds: ``app -> label`` of the world each run *finished* on
            (the migrated VM reports the destination host).
        migration: the migrated VM's ``migration.*`` stat dict.
        migrated_app: which app the protocol moved.
    """

    completion: Dict[str, Dict[str, float]]
    worlds: Dict[str, str]
    migration: Dict[str, float]
    migrated_app: str

    def overhead(self, app: str) -> float:
        """Evacuated-over-colocated completion ratio minus one."""
        per_app = self.completion[app]
        return per_app["evacuated"] / per_app["colocated"] - 1.0


def _app_pair(apps: Optional[Sequence[str]]) -> List[str]:
    if apps is None:
        return list(DEFAULT_APPS)
    names = common.app_names(apps)
    if len(names) != 2:
        raise ExperimentError(
            "cluster_migration runs exactly two VMs (the first one "
            f"migrates); got {names!r}"
        )
    return names


def _baseline_request(names: Sequence[str]) -> RunRequest:
    """The colocated baseline: both VMs on one Xen+ host from boot."""
    return common.pair_request(
        [VmRequest(app=name, policy="round-4k", num_vcpus=6) for name in names]
    )


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """One cluster run plus its single-host colocated baseline."""
    names = _app_pair(apps)
    return [common.cluster_request(names), _baseline_request(names)]


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> ClusterMigrationResult:
    """Build the evacuate-and-rebalance comparison from resolved runs."""
    names = _app_pair(apps)
    cluster_results = results.get(common.cluster_request(names))
    baseline_results = results.get(_baseline_request(names))
    by_app = {r.app: r for r in cluster_results}
    base_by_app = {r.app: r for r in baseline_results}
    completion: Dict[str, Dict[str, float]] = {}
    worlds: Dict[str, str] = {}
    for name in names:
        completion[name] = {
            "colocated": base_by_app[name].completion_seconds,
            "evacuated": by_app[name].completion_seconds,
        }
        worlds[name] = by_app[name].environment
    migrated = by_app[names[0]]
    migration = {
        key: value
        for key, value in migrated.stats.items()
        if key.startswith("migration.")
    }
    result = ClusterMigrationResult(
        completion=completion,
        worlds=worlds,
        migration=migration,
        migrated_app=names[0],
    )
    if verbose:
        rows = [
            [
                name,
                f"{completion[name]['colocated']:.2f} s",
                f"{completion[name]['evacuated']:.2f} s",
                f"{result.overhead(name) * 100:+.1f}%",
                worlds[name],
            ]
            for name in names
        ]
        print(
            format_table(
                ["app", "colocated", "evacuated", "overhead", "final world"],
                rows,
                title="Cluster - evacuate-and-rebalance vs colocated boot",
            )
        )
        from repro.analysis.figures import render_grouped_bars

        print()
        print(
            render_grouped_bars(
                completion,
                title="Cluster (completion seconds)",
                width=24,
                unit=" s",
                scale=1.0,
            )
        )
        stats = result.migration
        print(
            f"\n> {result.migrated_app} migrated in "
            f"{stats.get('migration.rounds', 0):.0f} rounds, "
            f"{stats.get('migration.pages_copied', 0):.0f} pages copied, "
            f"{stats.get('migration.dirty_faults', 0):.0f} dirty faults, "
            f"downtime {stats.get('migration.downtime_seconds', 0) * 1e3:.1f} ms"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> ClusterMigrationResult:
    """Regenerate the cluster evacuation comparison."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="cluster_migration",
        description="Two-host evacuation via pre-copy live migration",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
