"""Sections 4.2.3-4.2.4: the cost of page-event hypercalls and batching.

Three claims to reproduce:

* an empty hypercall per page release divides wrmem's performance by ~3
  (one release per 15 us per thread, 48 threads, one serialisation
  point);
* batching (64-entry queues) makes the overhead negligible;
* within a flush, ~87.5% of the time goes to invalidating pages and
  ~12.5% to sending the queue — which is why fancier queue algorithms
  were not worth it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.page_queue import lock_service_slowdown
from repro.core.policies.base import PolicyName, PolicySpec
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.hypervisor.hypercalls import HypercallCostModel
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest
from repro.workloads.suite import WRMEM_CHURN


@dataclass
class BatchingResult:
    """Measured batching behaviour."""

    wrmem_batched_seconds: float
    wrmem_unbatched_seconds: float
    invalidation_share: float
    global_queue_slowdown: float
    partitioned_queue_slowdown: float

    @property
    def unbatched_slowdown(self) -> float:
        return self.wrmem_unbatched_seconds / self.wrmem_batched_seconds


def _batched_request() -> RunRequest:
    return common.xen_request("wrmem", PolicySpec(PolicyName.ROUND_4K))


def _unbatched_request() -> RunRequest:
    # Same run with the strawman flag: one hypercall per page release.
    return replace(_batched_request(), unbatched_hypercalls=True)


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """wrmem under batched queues and under the hypercall-per-release mode."""
    return [_batched_request(), _unbatched_request()]


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> BatchingResult:
    """Build the batching result from resolved runs (``apps`` ignored)."""
    batched = results.one(_batched_request())
    unbatched = results.one(_unbatched_request())

    costs = HypercallCostModel()
    share = costs.invalidation_share(64)

    # Queue-lock contention: single global queue vs 4 partitions, at the
    # batched per-event service time and wrmem's release rate.
    per_event = costs.flush_cost(64) / 64
    global_q = lock_service_slowdown(WRMEM_CHURN, 48, per_event, 1)
    partitioned = lock_service_slowdown(WRMEM_CHURN, 48, per_event, 4)

    result = BatchingResult(
        wrmem_batched_seconds=batched.completion_seconds,
        wrmem_unbatched_seconds=unbatched.completion_seconds,
        invalidation_share=share,
        global_queue_slowdown=global_q,
        partitioned_queue_slowdown=partitioned,
    )
    if verbose:
        rows = [
            ["wrmem, batched (64x4 queues)", f"{batched.completion_seconds:.1f}s"],
            ["wrmem, hypercall per release", f"{unbatched.completion_seconds:.1f}s"],
            ["slowdown (paper: ~3x)", f"x{result.unbatched_slowdown:.2f}"],
            ["flush time invalidating (paper: 87.5%)", f"{share * 100:.1f}%"],
            ["global-queue slowdown", f"x{global_q:.3f}"],
            ["partitioned-queue slowdown", f"x{partitioned:.3f}"],
        ]
        print(
            format_table(
                ["measurement", "value"],
                rows,
                title="Sections 4.2.3-4.2.4 - hypercall batching",
            )
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> BatchingResult:
    """Regenerate the batching microbenchmarks (``apps`` ignored)."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="batching",
        description="Hypercall batching: wrmem strawman vs 64-entry queues",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
