"""Table 4: best NUMA policies, per application, in Linux and Xen+.

Runs the exhaustive sweeps (Figure 2's Linux combinations, Figure 7's
Xen+ policies plus round-1G) and reports the measured winner next to the
paper's. Exact per-application agreement is not expected — near-ties flip
easily — but the *family* of the winner (locality-preserving first-touch
vs balancing round-4K) should usually match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest
from repro.workloads.suite import get_app


def _family(label: str) -> str:
    """Collapse a policy label to its static family."""
    if "First-Touch" in label:
        return "first-touch"
    if "Round-1G" in label:
        return "round-1g"
    return "round-4k"


@dataclass
class Table4Row:
    app: str
    best_linux: str
    paper_linux: str
    best_xen: str
    paper_xen: str


@dataclass
class Table4Result:
    rows: List[Table4Row]

    def linux_family_matches(self) -> int:
        return sum(
            1
            for r in self.rows
            if _family(r.best_linux) == _family(r.paper_linux)
        )

    def xen_family_matches(self) -> int:
        return sum(
            1 for r in self.rows if _family(r.best_xen) == _family(r.paper_xen)
        )


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Both full sweeps (LinuxNUMA and Xen+NUMA), per application."""
    requests: List[RunRequest] = []
    for name in common.app_names(apps):
        requests.extend(common.linux_numa_requests(name))
        requests.extend(common.xen_numa_requests(name))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Table4Result:
    """Build Table 4 from resolved runs."""
    rows: List[Table4Row] = []
    printable: List[List[str]] = []
    for name in common.app_names(apps):
        app = get_app(name)
        _, linux_label = common.best_linux_numa(results.one, name)
        _, xen_label = common.best_xen_numa(results.one, name)
        rows.append(
            Table4Row(
                app=name,
                best_linux=linux_label,
                paper_linux=app.best_linux,
                best_xen=xen_label,
                paper_xen=app.best_xen,
            )
        )
        printable.append(
            [name, linux_label, app.best_linux, xen_label, app.best_xen]
        )
    result = Table4Result(rows)
    if verbose:
        print(
            format_table(
                ["app", "LinuxNUMA", "paper", "Xen+NUMA", "paper"],
                printable,
                title="Table 4 - best NUMA policies (measured vs paper)",
            )
        )
        n = len(result.rows)
        print(
            f"\n> family agreement: Linux {result.linux_family_matches()}/{n}, "
            f"Xen+ {result.xen_family_matches()}/{n}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Table4Result:
    """Regenerate Table 4."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="table4",
        description="Measured best policies vs the paper's, both systems",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
