"""Table 3: cache and memory access latency on AMD48.

A microbenchmark against the hardware model: cache level latencies, and
the memory latency for local / 1-hop / 2-hop accesses with one thread
(uncontended) and with 48 threads hammering a single node (the controller
and the incoming links saturated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.experiments.registry import Scenario, register
from repro.hardware.presets import amd48
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest

#: The paper's measured values (cycles).
PAPER_CACHE = {"L1": 5, "L2": 16, "L3": 48}
PAPER_MEMORY = {
    ("local", 1): 156,
    ("local", 48): 697,
    ("1hop", 1): 276,
    ("1hop", 48): 740,
    ("2hop", 1): 383,
    ("2hop", 48): 863,
}


@dataclass
class Table3Result:
    cache_cycles: Dict[str, float]
    memory_cycles: Dict[Tuple[str, int], float]

    def max_relative_error(self) -> float:
        errors = []
        for name, measured in self.cache_cycles.items():
            errors.append(abs(measured - PAPER_CACHE[name]) / PAPER_CACHE[name])
        for key, measured in self.memory_cycles.items():
            errors.append(abs(measured - PAPER_MEMORY[key]) / PAPER_MEMORY[key])
        return max(errors)


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Table 3 is analytic: it consumes no engine runs."""
    return []


def assemble(
    results: Optional[ResultSet] = None,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Table3Result:
    """Build Table 3 from the hardware model (``results`` unused)."""
    machine = amd48()
    cache = {
        level.name: level.latency_cycles for level in machine.caches.levels
    }
    # The contended case: 48 threads target one node; the controller and
    # the incoming links run at the queueing cap.
    cap = machine.latency.rho_cap
    memory = {
        ("local", 1): machine.latency.memory_latency_cycles(0, 0.0, 0.0),
        ("local", 48): machine.latency.memory_latency_cycles(0, cap, cap),
        ("1hop", 1): machine.latency.memory_latency_cycles(1, 0.0, 0.0),
        ("1hop", 48): machine.latency.memory_latency_cycles(1, cap, cap),
        ("2hop", 1): machine.latency.memory_latency_cycles(2, 0.0, 0.0),
        ("2hop", 48): machine.latency.memory_latency_cycles(2, cap, cap),
    }
    result = Table3Result(cache_cycles=cache, memory_cycles=memory)
    if verbose:
        rows = [
            [name, f"{cycles:.0f}", str(PAPER_CACHE[name])]
            for name, cycles in cache.items()
        ]
        print(
            format_table(
                ["cache", "model (cyc)", "paper (cyc)"],
                rows,
                title="Table 3a - cache latencies",
            )
        )
        rows = [
            [
                f"{kind} / {threads} thread(s)",
                f"{cycles:.0f}",
                str(PAPER_MEMORY[(kind, threads)]),
            ]
            for (kind, threads), cycles in memory.items()
        ]
        print()
        print(
            format_table(
                ["memory access", "model (cyc)", "paper (cyc)"],
                rows,
                title="Table 3b - memory latencies",
            )
        )
        print(f"\n> max relative error: {result.max_relative_error() * 100:.1f}%")
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Table3Result:
    """Regenerate Table 3 from the hardware model.

    ``apps`` is accepted for interface uniformity and ignored (this is a
    machine microbenchmark).
    """
    return assemble(None, apps=None, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="table3",
        description="Cache and memory latency calibration (microbenchmark)",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
