"""Figure 8: two colocated VMs, 24 vCPUs each, on disjoint node halves.

Each virtual machine runs one application with as many threads as vCPUs;
the first VM is pinned on one half of the NUMA nodes, the second on the
other half. Because placement matters, every configuration runs twice
with the halves swapped and the completion times are averaged (exactly
the paper's protocol). Reported: improvement of the best Xen NUMA policy
per application over the Xen+ default (round-1G).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_percent, format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.experiments import common
from repro.sim.environment import VmSpec
from repro.workloads.suite import get_app

#: The five colocated pairs (the paper's figure labels are not
#: machine-readable; the text names cg.C + sp.C explicitly, the others
#: are representative pairs across the imbalance classes).
DEFAULT_PAIRS: List[Tuple[str, str]] = [
    ("cg.C", "sp.C"),
    ("facesim", "streamcluster"),
    ("wc", "wr"),
    ("kmeans", "pca"),
    ("bt.C", "ft.C"),
]

_HALVES = ([0, 1, 2, 3], [4, 5, 6, 7])


@dataclass
class PairResult:
    """Improvement of each VM of one pair (averaged over the swap)."""

    apps: Tuple[str, str]
    improvements: Tuple[float, float]
    base_seconds: Tuple[float, float]
    best_seconds: Tuple[float, float]
    policies: Tuple[str, str]


@dataclass
class Fig8Result:
    pairs: List[PairResult]

    def count_vm_improved_above(self, threshold: float) -> int:
        """Pairs where at least one VM improves beyond ``threshold``."""
        return sum(1 for p in self.pairs if max(p.improvements) > threshold)

    def max_improvement(self) -> float:
        return max(max(p.improvements) for p in self.pairs)

    def max_degradation(self) -> float:
        return max(0.0, -min(min(p.improvements) for p in self.pairs))


def best_policy_spec(app_name: str) -> PolicySpec:
    """The measured best single-VM Xen policy for an application."""
    app = get_app(app_name)
    _, label = common.xen_numa_run(app)
    return PolicySpec.parse(label)


def _pair_completions(
    names: Tuple[str, str],
    policies: Tuple[PolicySpec, PolicySpec],
    vcpus: int = 24,
) -> Tuple[float, float]:
    """Average completion of both runs (halves swapped)."""
    totals = [0.0, 0.0]
    for flip in (False, True):
        halves = _HALVES if not flip else (_HALVES[1], _HALVES[0])
        specs = []
        for i, name in enumerate(names):
            home = halves[i]
            pin = [c for node in home for c in range(node * 6, node * 6 + 6)][:vcpus]
            specs.append(
                VmSpec(
                    app=get_app(name),
                    policy=policies[i],
                    num_vcpus=vcpus,
                    home_nodes=home,
                    pin_pcpus=pin,
                )
            )
        results = common.xen_pair_run(specs)
        for i, result in enumerate(results):
            totals[i] += result.completion_seconds / 2.0
    return totals[0], totals[1]


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> Fig8Result:
    """Regenerate Figure 8 (``apps`` ignored; pass ``pairs`` to restrict)."""
    pairs = pairs or DEFAULT_PAIRS
    out: List[PairResult] = []
    rows: List[List[str]] = []
    round1g = PolicySpec(PolicyName.ROUND_1G)
    for pair in pairs:
        base = _pair_completions(pair, (round1g, round1g))
        best_specs = (best_policy_spec(pair[0]), best_policy_spec(pair[1]))
        best = _pair_completions(pair, best_specs)
        improvements = (base[0] / best[0] - 1.0, base[1] / best[1] - 1.0)
        out.append(
            PairResult(
                apps=pair,
                improvements=improvements,
                base_seconds=base,
                best_seconds=best,
                policies=(best_specs[0].label, best_specs[1].label),
            )
        )
        for i in (0, 1):
            rows.append(
                [
                    f"{pair[0]} + {pair[1]}",
                    pair[i],
                    out[-1].policies[i],
                    format_percent(improvements[i], signed=True),
                ]
            )
    result = Fig8Result(out)
    if verbose:
        print(
            format_table(
                ["pair", "vm", "policy", "improvement"],
                rows,
                title="Figure 8 - 2 colocated VMs (24 vCPUs each) vs Xen+",
            )
        )
        print(
            f"\n> max improvement {format_percent(result.max_improvement())}, "
            f"max degradation {format_percent(result.max_degradation())}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
