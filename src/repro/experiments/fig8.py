"""Figure 8: two colocated VMs, 24 vCPUs each, on disjoint node halves.

Each virtual machine runs one application with as many threads as vCPUs;
the first VM is pinned on one half of the NUMA nodes, the second on the
other half. Because placement matters, every configuration runs twice
with the halves swapped and the completion times are averaged (exactly
the paper's protocol). Reported: improvement of the best Xen NUMA policy
per application over the Xen+ default (round-1G).

A two-stage scenario: ``required_runs`` declares the per-application
policy sweeps and the round-1G pair baselines; the best-policy pair runs
depend on the sweep outcome, so ``assemble`` batches them as a follow-up
resolution through the same :class:`~repro.runner.ResultSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_percent, format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest, VmRequest
from repro.workloads.suite import get_app

#: The five colocated pairs (the paper's figure labels are not
#: machine-readable; the text names cg.C + sp.C explicitly, the others
#: are representative pairs across the imbalance classes).
DEFAULT_PAIRS: List[Tuple[str, str]] = [
    ("cg.C", "sp.C"),
    ("facesim", "streamcluster"),
    ("wc", "wr"),
    ("kmeans", "pca"),
    ("bt.C", "ft.C"),
]

_HALVES = ([0, 1, 2, 3], [4, 5, 6, 7])


@dataclass
class PairResult:
    """Improvement of each VM of one pair (averaged over the swap)."""

    apps: Tuple[str, str]
    improvements: Tuple[float, float]
    base_seconds: Tuple[float, float]
    best_seconds: Tuple[float, float]
    policies: Tuple[str, str]


@dataclass
class Fig8Result:
    pairs: List[PairResult]

    def count_vm_improved_above(self, threshold: float) -> int:
        """Pairs where at least one VM improves beyond ``threshold``."""
        return sum(1 for p in self.pairs if max(p.improvements) > threshold)

    def max_improvement(self) -> float:
        return max(max(p.improvements) for p in self.pairs)

    def max_degradation(self) -> float:
        return max(0.0, -min(min(p.improvements) for p in self.pairs))


def pair_apps(pairs: Sequence[Tuple[str, str]]) -> List[str]:
    """Unique application names across ``pairs``, in first-seen order."""
    return list(dict.fromkeys(name for pair in pairs for name in pair))


def pair_run_request(
    names: Tuple[str, str],
    policies: Tuple[PolicySpec, PolicySpec],
    flip: bool,
    vcpus: int = 24,
) -> RunRequest:
    """One colocated two-VM run (halves swapped when ``flip``)."""
    halves = _HALVES if not flip else (_HALVES[1], _HALVES[0])
    vms = []
    for i, name in enumerate(names):
        home = halves[i]
        pin = [c for node in home for c in range(node * 6, node * 6 + 6)][:vcpus]
        vms.append(
            VmRequest(
                app=name,
                policy=policies[i].base.value,
                carrefour=policies[i].carrefour,
                num_vcpus=vcpus,
                home_nodes=home,
                pin_pcpus=pin,
            )
        )
    return common.pair_request(vms)


def best_policy_spec(app_name: str) -> PolicySpec:
    """The measured best single-VM Xen policy for an application."""
    app = get_app(app_name)
    _, label = common.xen_numa_run(app)
    return PolicySpec.parse(label)


def resolved_best_spec(results: ResultSet, app_name: str) -> PolicySpec:
    """Like :func:`best_policy_spec`, reading the sweep from ``results``."""
    _, label = common.best_xen_numa(results.one, app_name)
    return PolicySpec.parse(label)


def required_runs(
    apps: Optional[Sequence[str]] = None,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> List[RunRequest]:
    """Policy sweeps for every paired app plus the round-1G baselines."""
    pairs = pairs or DEFAULT_PAIRS
    requests: List[RunRequest] = []
    for name in pair_apps(pairs):
        requests.extend(common.xen_numa_requests(name))
    round1g = PolicySpec(PolicyName.ROUND_1G)
    for pair in pairs:
        for flip in (False, True):
            requests.append(pair_run_request(pair, (round1g, round1g), flip))
    return requests


def _pair_completions(
    results: ResultSet,
    names: Tuple[str, str],
    policies: Tuple[PolicySpec, PolicySpec],
) -> Tuple[float, float]:
    """Average completion of both runs (halves swapped)."""
    totals = [0.0, 0.0]
    for flip in (False, True):
        run_results = results.get(pair_run_request(names, policies, flip))
        for i, result in enumerate(run_results):
            totals[i] += result.completion_seconds / 2.0
    return totals[0], totals[1]


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> Fig8Result:
    """Build Figure 8 from resolved runs (``apps`` ignored)."""
    pairs = pairs or DEFAULT_PAIRS
    round1g = PolicySpec(PolicyName.ROUND_1G)
    # Stage 2: the winners of the sweeps decide the best-policy pair
    # runs; batch them in one resolution so --jobs parallelises them.
    best = {name: resolved_best_spec(results, name) for name in pair_apps(pairs)}
    results.resolve(
        [
            pair_run_request(pair, (best[pair[0]], best[pair[1]]), flip)
            for pair in pairs
            for flip in (False, True)
        ]
    )
    out: List[PairResult] = []
    rows: List[List[str]] = []
    for pair in pairs:
        base = _pair_completions(results, pair, (round1g, round1g))
        best_specs = (best[pair[0]], best[pair[1]])
        best_times = _pair_completions(results, pair, best_specs)
        improvements = (
            base[0] / best_times[0] - 1.0,
            base[1] / best_times[1] - 1.0,
        )
        out.append(
            PairResult(
                apps=pair,
                improvements=improvements,
                base_seconds=base,
                best_seconds=best_times,
                policies=(best_specs[0].label, best_specs[1].label),
            )
        )
        for i in (0, 1):
            rows.append(
                [
                    f"{pair[0]} + {pair[1]}",
                    pair[i],
                    out[-1].policies[i],
                    format_percent(improvements[i], signed=True),
                ]
            )
    result = Fig8Result(out)
    if verbose:
        print(
            format_table(
                ["pair", "vm", "policy", "improvement"],
                rows,
                title="Figure 8 - 2 colocated VMs (24 vCPUs each) vs Xen+",
            )
        )
        print(
            f"\n> max improvement {format_percent(result.max_improvement())}, "
            f"max degradation {format_percent(result.max_degradation())}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    pairs: Optional[List[Tuple[str, str]]] = None,
    runner: Optional[Runner] = None,
) -> Fig8Result:
    """Regenerate Figure 8 (``apps`` ignored; pass ``pairs`` to restrict)."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps, pairs=pairs))
    return assemble(results, apps=apps, verbose=verbose, pairs=pairs)


SCENARIO = register(
    Scenario(
        name="fig8",
        description="Two colocated 24-vCPU VMs: best policy vs round-1G",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
