"""Figure 6: overhead of Linux, Xen and Xen+ relative to LinuxNUMA.

LinuxNUMA = native Linux with the best policy per application and MCS
locks for facesim/streamcluster. The paper's reading: even after removing
the I/O and IPI overheads (Xen+), 20 applications stay above 25% overhead,
14 above 50% and 11 above 100% — the remaining gap is NUMA placement.

This scenario's ``required_runs`` *includes* Figure 2's: the Linux sweep
is a declared shared dependency, so ``run fig2 fig6`` executes it once
and the second scenario hits the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common, fig2
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.results import relative_overhead
from repro.sim.runspec import RunRequest


@dataclass
class Fig6Result:
    """overheads[app][config] for config in linux / xen / xen+."""

    overheads: Dict[str, Dict[str, float]]

    def count_above(self, config: str, threshold: float) -> int:
        return sum(
            1 for per_app in self.overheads.values() if per_app[config] > threshold
        )


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Figure 2's Linux sweep, the MCS variants, and both Xen baselines."""
    requests: List[RunRequest] = list(fig2.required_runs(apps))
    for name in common.app_names(apps):
        # The LinuxNUMA base re-runs the sweep with MCS locks for the
        # two lock-bound applications (a no-op set for the others —
        # the runner deduplicates them against Figure 2's requests).
        requests.extend(common.linux_numa_requests(name))
        requests.append(common.xen_stock_request(name))
        requests.append(common.xen_plus_request(name))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig6Result:
    """Build Figure 6 from resolved runs."""
    overheads: Dict[str, Dict[str, float]] = {}
    rows: List[List[str]] = []
    for name in common.app_names(apps):
        base, base_label = common.best_linux_numa(results.one, name)
        linux = results.one(common.linux_request(name, "first-touch"))
        xen = results.one(common.xen_stock_request(name))
        xen_plus = results.one(common.xen_plus_request(name))
        per_app = {
            "linux": relative_overhead(linux, base),
            "xen": relative_overhead(xen, base),
            "xen+": relative_overhead(xen_plus, base),
        }
        overheads[name] = per_app
        rows.append(
            [
                name,
                format_percent(per_app["linux"], signed=True),
                format_percent(per_app["xen"], signed=True),
                format_percent(per_app["xen+"], signed=True),
                base_label,
            ]
        )
    result = Fig6Result(overheads)
    if verbose:
        print(
            format_table(
                ["app", "Linux", "Xen", "Xen+", "LinuxNUMA policy"],
                rows,
                title="Figure 6 - overhead vs LinuxNUMA (lower is better)",
            )
        )
        print(
            f"\n> Xen+ overhead above 25%: {result.count_above('xen+', 0.25)} apps, "
            f"above 50%: {result.count_above('xen+', 0.5)}, "
            f"above 100%: {result.count_above('xen+', 1.0)}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig6Result:
    """Regenerate Figure 6."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig6",
        description="Linux, Xen, Xen+ overhead relative to LinuxNUMA",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
        reuses=("fig2",),
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
