"""Figure 6: overhead of Linux, Xen and Xen+ relative to LinuxNUMA.

LinuxNUMA = native Linux with the best policy per application and MCS
locks for facesim/streamcluster. The paper's reading: even after removing
the I/O and IPI overheads (Xen+), 20 applications stay above 25% overhead,
14 above 50% and 11 above 100% — the remaining gap is NUMA placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.sim.results import relative_overhead


@dataclass
class Fig6Result:
    """overheads[app][config] for config in linux / xen / xen+."""

    overheads: Dict[str, Dict[str, float]]

    def count_above(self, config: str, threshold: float) -> int:
        return sum(
            1 for per_app in self.overheads.values() if per_app[config] > threshold
        )


def run(apps: Optional[Sequence[str]] = None, verbose: bool = True) -> Fig6Result:
    """Regenerate Figure 6."""
    overheads: Dict[str, Dict[str, float]] = {}
    rows: List[List[str]] = []
    for app in common.select_apps(apps):
        base, base_label = common.linux_numa_run(app)
        linux = common.linux_run(app, "first-touch")
        xen = common.xen_stock_run(app)
        xen_plus = common.xen_plus_run(app)
        per_app = {
            "linux": relative_overhead(linux, base),
            "xen": relative_overhead(xen, base),
            "xen+": relative_overhead(xen_plus, base),
        }
        overheads[app.name] = per_app
        rows.append(
            [
                app.name,
                format_percent(per_app["linux"], signed=True),
                format_percent(per_app["xen"], signed=True),
                format_percent(per_app["xen+"], signed=True),
                base_label,
            ]
        )
    result = Fig6Result(overheads)
    if verbose:
        print(
            format_table(
                ["app", "Linux", "Xen", "Xen+", "LinuxNUMA policy"],
                rows,
                title="Figure 6 - overhead vs LinuxNUMA (lower is better)",
            )
        )
        print(
            f"\n> Xen+ overhead above 25%: {result.count_above('xen+', 0.25)} apps, "
            f"above 50%: {result.count_above('xen+', 0.5)}, "
            f"above 100%: {result.count_above('xen+', 1.0)}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
