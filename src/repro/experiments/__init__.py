"""One scenario module per paper table and figure.

Every module registers a :class:`~repro.experiments.registry.Scenario`
(declared runs + assembly) and still exposes the classic
``run(apps=None, verbose=True)`` returning a structured result and
printing the same rows/series the paper reports.

Command line::

    python -m repro.experiments list
    python -m repro.experiments run fig2 fig6 --jobs 8 --store .runstore
    python -m repro.experiments <name> [app ...]   # legacy form

Names: fig1, fig2, table1, table2, table3, table4, fig5, io_micro (alias
io), fig6, fig7, fig8, fig9, fig10, batching.
"""

from repro.experiments import common

__all__ = ["common"]
