"""One module per paper table and figure.

Every module exposes ``run(apps=None, verbose=True)`` returning a
structured result and printing the same rows/series the paper reports.
Use ``python -m repro.experiments <name>`` from the command line; names:
fig1, fig2, table1, table2, table3, table4, fig5, io, fig6, fig7, fig8,
fig9, fig10, batching.
"""

from repro.experiments import common

__all__ = ["common"]
