"""Table 2: behaviour of the applications.

Hard-drive rate, intentional context switches and memory footprint. These
are *inputs* to the workload models (transcribed from the paper); the
experiment re-measures what it can from a native run — the effective disk
rate (bytes read / completion time) and the resident footprint — to check
the models stay consistent with their specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.hardware.presets import amd48
from repro.runner import ResultSet, Runner
from repro.sim.calibration import calibrate_app
from repro.sim.runspec import RunRequest
from repro.workloads.suite import get_app


@dataclass
class Table2Row:
    app: str
    suite: str
    disk_mb_s_spec: float
    disk_mb_s_measured: float
    ctx_switches_k_s: float
    footprint_mb_spec: float
    footprint_mb_modeled: float


@dataclass
class Table2Result:
    rows: List[Table2Row]


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """One native first-touch run per application."""
    return [
        common.linux_request(name, "first-touch") for name in common.app_names(apps)
    ]


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Table2Result:
    """Build Table 2 (spec vs measured) from resolved runs."""
    config = common.default_config()
    machine = amd48(config=config)
    rows: List[Table2Row] = []
    printable: List[List[str]] = []
    for name in common.app_names(apps):
        app = get_app(name)
        result = results.one(common.linux_request(name, "first-touch"))
        op_model = calibrate_app(app, machine)
        total_ops = op_model.ops_per_thread * machine.num_cpus
        bytes_read = op_model.io_bytes_per_op * total_ops
        measured_rate = bytes_read / result.completion_seconds / 1e6
        footprint_pages = config.pages_for_bytes(app.footprint_bytes)
        modeled_mb = footprint_pages * config.page_bytes / (1 << 20)
        row = Table2Row(
            app=name,
            suite=app.suite,
            disk_mb_s_spec=app.disk_mb_s,
            disk_mb_s_measured=measured_rate,
            ctx_switches_k_s=app.ctx_switches_k_s,
            footprint_mb_spec=app.footprint_mb,
            footprint_mb_modeled=modeled_mb,
        )
        rows.append(row)
        printable.append(
            [
                name,
                app.suite,
                f"{row.disk_mb_s_spec:.0f}",
                f"{row.disk_mb_s_measured:.0f}",
                f"{row.ctx_switches_k_s:.1f}",
                f"{row.footprint_mb_spec:.0f}",
                f"{row.footprint_mb_modeled:.0f}",
            ]
        )
    out = Table2Result(rows)
    if verbose:
        print(
            format_table(
                [
                    "app",
                    "suite",
                    "disk MB/s",
                    "measured",
                    "ctx k/s",
                    "mem MB",
                    "modeled MB",
                ],
                printable,
                title="Table 2 - application behaviour (spec vs model)",
            )
        )
    return out


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Table2Result:
    """Regenerate Table 2 (spec vs measured)."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="table2",
        description="Application behaviour: disk rate, switches, footprint",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
