"""Request constructors, best-policy pickers and the default pipeline.

The evaluation compares a fixed set of configurations:

* **Linux** — native, first-touch (the Linux default), blocking locks;
* **LinuxNUMA** — native, best policy per application, MCS locks for
  facesim/streamcluster (section 5.3.3);
* **Xen** — stock: round-1G placement, para-virtualised I/O, blocking
  locks over virtualised IPIs;
* **Xen+** — round-1G plus PCI passthrough and MCS locks (section 5.3);
* **Xen+NUMA** — Xen+ with the best NUMA policy per application
  (first-touch implies the passthrough driver turns off).

Scenarios declare these as :class:`~repro.sim.runspec.RunRequest` lists
(built by the constructors below) and the :mod:`repro.runner` resolves
them through a :mod:`repro.runstore` store — Figure 6 literally requires
Figure 2's sweep requests, Figure 10 requires Figure 7's, and the store
turns that shared identity into cache hits instead of relying on memo-dict
coincidence.

The historical per-process memo survives as thin shims: ``linux_run`` and
friends resolve a single request through a module-default in-memory store,
``_CACHE`` aliases that store's dict (keys are now content hashes) and
``clear_cache`` empties it — tests written against the old interface keep
passing unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.errors import WorkloadError
from repro.hypervisor.xen import XEN, XEN_PLUS, XenFeatures
from repro.runner import ResultSet, Runner
from repro.runstore.memory import MemoryRunStore
from repro.sim.engine import run_app, run_apps
from repro.sim.environment import (
    LinuxEnvironment,
    VmSpec,
    XenEnvironment,
    MCS_APPS,
)
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest, VmRequest
from repro.workloads.app import AppSpec
from repro.workloads.suite import APPLICATIONS, get_app

#: The Linux policy combinations evaluated exhaustively in Figure 2.
LINUX_COMBOS: List[Tuple[str, bool]] = [
    ("first-touch", False),
    ("first-touch", True),
    ("round-4k", False),
    ("round-4k", True),
]

#: The Xen policies of Figure 7 (round-1G is the Xen+ baseline itself).
XEN_POLICIES: List[PolicySpec] = [
    PolicySpec(PolicyName.FIRST_TOUCH),
    PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True),
    PolicySpec(PolicyName.ROUND_4K),
    PolicySpec(PolicyName.ROUND_4K, carrefour=True),
]

#: All Xen policies including the boot-only default.
XEN_POLICIES_ALL: List[PolicySpec] = [PolicySpec(PolicyName.ROUND_1G)] + XEN_POLICIES

# ----------------------------------------------------------------------
# The default pipeline (in-memory store, serial runner)

_STORE = MemoryRunStore()
_RUNNER = Runner(store=_STORE, jobs=1)

#: Legacy alias: the default store's underlying dict. Keys are request
#: cache hashes (they used to be ad-hoc tuples); the dict object is
#: stable across ``clear_cache`` calls, so holding a reference stays safe.
_CACHE = _STORE.data

class _ConfigHolder:
    """Holds the process-default request-construction config.

    An attribute on a holder object (not a rebound module global) so the
    dataflow lint sees :func:`configured`'s swap as a confined write.
    """

    __slots__ = ("config",)

    def __init__(self) -> None:
        self.config = SimConfig()


_DEFAULT = _ConfigHolder()


def default_runner() -> Runner:
    """The process-wide serial runner the experiment shims resolve through."""
    return _RUNNER


def clear_cache() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    _STORE.clear()
    _RUNNER.stats.requested = 0
    _RUNNER.stats.deduplicated = 0
    _RUNNER.stats.executed = 0


def default_config() -> SimConfig:
    """The configuration every experiment runs with."""
    return _DEFAULT.config


@contextmanager
def configured(config: SimConfig):
    """Temporarily swap the default config (the CLI's tiny-config knob).

    Only affects *request construction*: workers always rebuild the world
    from the config embedded in the serialized request.
    """
    previous = _DEFAULT.config
    _DEFAULT.config = config
    try:
        yield config
    finally:
        _DEFAULT.config = previous


def select_apps(apps: Optional[Sequence[str]] = None) -> List[AppSpec]:
    """Resolve an app-name list (None = all 29)."""
    if apps is None:
        return list(APPLICATIONS)
    return [get_app(name) for name in apps]


def app_names(apps: Optional[Sequence[str]] = None) -> List[str]:
    """Like :func:`select_apps` but returning validated names."""
    return [app.name for app in select_apps(apps)]


# ----------------------------------------------------------------------
# Request constructors (the vocabulary scenarios declare runs in)


def linux_request(
    app_name: str,
    policy: str = "first-touch",
    carrefour: bool = False,
    mcs_locks: bool = False,
    config: Optional[SimConfig] = None,
) -> RunRequest:
    """One native-Linux run."""
    return RunRequest(
        environment="linux",
        vms=(
            VmRequest(
                app=app_name, policy=policy, carrefour=carrefour, mcs_locks=mcs_locks
            ),
        ),
        config=config or default_config(),
    )


def xen_request(
    app_name: str,
    policy: PolicySpec,
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> RunRequest:
    """One single-VM Xen run (48 vCPUs, all threads pinned)."""
    return RunRequest(
        environment="xen",
        vms=(
            VmRequest(
                app=app_name, policy=policy.base.value, carrefour=policy.carrefour
            ),
        ),
        features=features.name,
        config=config or default_config(),
    )


def xen_stock_request(app_name: str, config: Optional[SimConfig] = None) -> RunRequest:
    """Stock Xen (Figure 1): round-1G, PV I/O, blocking locks."""
    return xen_request(app_name, PolicySpec(PolicyName.ROUND_1G), features=XEN, config=config)


def xen_plus_request(app_name: str, config: Optional[SimConfig] = None) -> RunRequest:
    """Xen+ baseline (sections 5.3-5.4): round-1G with the mitigations."""
    return xen_request(
        app_name, PolicySpec(PolicyName.ROUND_1G), features=XEN_PLUS, config=config
    )


def pair_request(
    vms: Sequence[VmRequest],
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> RunRequest:
    """A multi-VM consolidated/colocated run (Figures 8 and 9)."""
    return RunRequest(
        environment="xen",
        vms=tuple(vms),
        features=features.name,
        config=config or default_config(),
    )


def cluster_request(
    app_names: Sequence[str],
    policy: str = "round-4k",
    num_vcpus: Optional[int] = 6,
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> RunRequest:
    """A two-host cluster run that live-migrates the first VM.

    The executor hard-wires the cluster shape (two hosts, migration at a
    fixed epoch, default protocol knobs) so the request vocabulary — and
    with it every existing cache key — stays unchanged.
    """
    return RunRequest(
        environment="cluster",
        vms=tuple(
            VmRequest(app=name, policy=policy, num_vcpus=num_vcpus)
            for name in app_names
        ),
        features=features.name,
        config=config or default_config(),
    )


def linux_numa_requests(
    app_name: str, config: Optional[SimConfig] = None
) -> List[RunRequest]:
    """The LinuxNUMA sweep: Figure 2's combos, MCS locks where they apply."""
    mcs = app_name in MCS_APPS
    return [
        linux_request(app_name, policy, carrefour, mcs_locks=mcs, config=config)
        for policy, carrefour in LINUX_COMBOS
    ]


def xen_numa_requests(
    app_name: str, config: Optional[SimConfig] = None
) -> List[RunRequest]:
    """The Xen+NUMA sweep: every policy including the round-1G default."""
    return [xen_request(app_name, spec, config=config) for spec in XEN_POLICIES_ALL]


# ----------------------------------------------------------------------
# Best-policy pickers (shared by LinuxNUMA/Xen+NUMA scenarios and shims)


def _pick_best(
    candidates: Iterable[Tuple[RunResult, str]]
) -> Tuple[RunResult, str]:
    """First strict minimum of completion time (ties keep the earlier)."""
    best: Optional[RunResult] = None
    best_label = ""
    for result, label in candidates:
        if best is None or result.completion_seconds < best.completion_seconds:
            best, best_label = result, label
    assert best is not None
    return best, best_label


def best_linux_numa(
    fetch: Callable[[RunRequest], RunResult],
    app_name: str,
    config: Optional[SimConfig] = None,
) -> Tuple[RunResult, str]:
    """LinuxNUMA winner for ``app_name``, reading runs through ``fetch``."""
    mcs = app_name in MCS_APPS
    return _pick_best(
        (
            fetch(linux_request(app_name, policy, carrefour, mcs_locks=mcs, config=config)),
            _linux_label(policy, carrefour),
        )
        for policy, carrefour in LINUX_COMBOS
    )


def best_xen_numa(
    fetch: Callable[[RunRequest], RunResult],
    app_name: str,
    config: Optional[SimConfig] = None,
) -> Tuple[RunResult, str]:
    """Xen+NUMA winner for ``app_name``, reading runs through ``fetch``."""
    return _pick_best(
        (fetch(xen_request(app_name, spec, config=config)), spec.label)
        for spec in XEN_POLICIES_ALL
    )


def _linux_label(policy: str, carrefour: bool) -> str:
    label = {"first-touch": "First-Touch", "round-4k": "Round-4K"}[policy]
    if carrefour:
        label += " / Carrefour"
    return label


# ----------------------------------------------------------------------
# Legacy memoised runners (thin shims over the default pipeline)


def _is_suite_app(app: AppSpec) -> bool:
    """Whether ``app`` is the registered suite spec (vs an ad-hoc copy)."""
    try:
        return get_app(app.name) == app
    except WorkloadError:
        return False


def _resolve_one(request: RunRequest) -> RunResult:
    return _RUNNER.resolve([request]).one(request)


def linux_run(
    app: AppSpec,
    policy: str = "first-touch",
    carrefour: bool = False,
    mcs_locks: bool = False,
    config: Optional[SimConfig] = None,
) -> RunResult:
    """One memoised native-Linux run."""
    config = config or default_config()
    if not _is_suite_app(app):
        # Ad-hoc AppSpec copies cannot be named in a request; run direct.
        env = LinuxEnvironment(
            policy=policy, carrefour=carrefour, mcs_locks=mcs_locks, config=config
        )
        return run_app(env, app)
    return _resolve_one(
        linux_request(app.name, policy, carrefour, mcs_locks=mcs_locks, config=config)
    )


def linux_numa_run(app: AppSpec, config: Optional[SimConfig] = None) -> Tuple[RunResult, str]:
    """LinuxNUMA: the best Linux policy for ``app`` (+ MCS where used)."""
    mcs = app.name in MCS_APPS
    return _pick_best(
        (
            linux_run(app, policy, carrefour, mcs_locks=mcs, config=config),
            _linux_label(policy, carrefour),
        )
        for policy, carrefour in LINUX_COMBOS
    )


def xen_run(
    app: AppSpec,
    policy: PolicySpec,
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> RunResult:
    """One memoised single-VM Xen run (48 vCPUs, all threads pinned)."""
    config = config or default_config()
    if not _is_suite_app(app) or features not in (XEN, XEN_PLUS):
        # Ad-hoc apps or feature sets cannot be named in a request; run direct.
        env = XenEnvironment(features=features, config=config)
        return run_app(env, VmSpec(app=app, policy=policy))
    return _resolve_one(xen_request(app.name, policy, features=features, config=config))


def xen_stock_run(app: AppSpec, config: Optional[SimConfig] = None) -> RunResult:
    """Stock Xen (Figure 1): round-1G, PV I/O, blocking locks."""
    return xen_run(app, PolicySpec(PolicyName.ROUND_1G), features=XEN, config=config)


def xen_plus_run(app: AppSpec, config: Optional[SimConfig] = None) -> RunResult:
    """Xen+ baseline (sections 5.3-5.4): round-1G with the mitigations."""
    return xen_run(
        app, PolicySpec(PolicyName.ROUND_1G), features=XEN_PLUS, config=config
    )


def xen_numa_run(app: AppSpec, config: Optional[SimConfig] = None) -> Tuple[RunResult, str]:
    """Xen+NUMA: the best Xen+ policy for ``app`` (round-1G included)."""
    return _pick_best(
        (xen_run(app, spec, features=XEN_PLUS, config=config), spec.label)
        for spec in XEN_POLICIES_ALL
    )


def xen_pair_run(
    specs: Sequence[VmSpec],
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> List[RunResult]:
    """A multi-VM run (Figures 8 and 9), now store-backed like the rest."""
    config = config or default_config()
    if features not in (XEN, XEN_PLUS) or not all(
        _is_suite_app(spec.app) for spec in specs
    ):
        env = XenEnvironment(features=features, config=config)
        return run_apps(env, list(specs))
    request = pair_request(
        [
            VmRequest(
                app=spec.app.name,
                policy=spec.policy.base.value,
                carrefour=spec.policy.carrefour,
                num_vcpus=spec.num_vcpus,
                home_nodes=spec.home_nodes,
                pin_pcpus=spec.pin_pcpus,
                memory_pages=spec.memory_pages,
            )
            for spec in specs
        ],
        features=features,
        config=config,
    )
    return list(_RUNNER.resolve([request]).get(request))


__all__ = [
    "LINUX_COMBOS",
    "XEN_POLICIES",
    "XEN_POLICIES_ALL",
    "ResultSet",
    "default_runner",
    "clear_cache",
    "default_config",
    "configured",
    "select_apps",
    "app_names",
    "linux_request",
    "xen_request",
    "xen_stock_request",
    "xen_plus_request",
    "pair_request",
    "cluster_request",
    "linux_numa_requests",
    "xen_numa_requests",
    "best_linux_numa",
    "best_xen_numa",
    "linux_run",
    "linux_numa_run",
    "xen_run",
    "xen_stock_run",
    "xen_plus_run",
    "xen_numa_run",
    "xen_pair_run",
]
