"""Shared runners (memoised) and the paper's standard configurations.

The evaluation compares a fixed set of configurations:

* **Linux** — native, first-touch (the Linux default), blocking locks;
* **LinuxNUMA** — native, best policy per application, MCS locks for
  facesim/streamcluster (section 5.3.3);
* **Xen** — stock: round-1G placement, para-virtualised I/O, blocking
  locks over virtualised IPIs;
* **Xen+** — round-1G plus PCI passthrough and MCS locks (section 5.3);
* **Xen+NUMA** — Xen+ with the best NUMA policy per application
  (first-touch implies the passthrough driver turns off).

Runs are memoised per process: Figure 6 reuses Figure 2's LinuxNUMA
sweep, Figure 10 reuses Figure 7's policy sweep, and so on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.hypervisor.xen import XEN, XEN_PLUS, XenFeatures
from repro.sim.engine import run_app, run_apps
from repro.sim.environment import (
    LinuxEnvironment,
    VmSpec,
    XenEnvironment,
    MCS_APPS,
)
from repro.sim.results import RunResult
from repro.workloads.app import AppSpec
from repro.workloads.suite import APPLICATIONS, get_app

#: The Linux policy combinations evaluated exhaustively in Figure 2.
LINUX_COMBOS: List[Tuple[str, bool]] = [
    ("first-touch", False),
    ("first-touch", True),
    ("round-4k", False),
    ("round-4k", True),
]

#: The Xen policies of Figure 7 (round-1G is the Xen+ baseline itself).
XEN_POLICIES: List[PolicySpec] = [
    PolicySpec(PolicyName.FIRST_TOUCH),
    PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True),
    PolicySpec(PolicyName.ROUND_4K),
    PolicySpec(PolicyName.ROUND_4K, carrefour=True),
]

#: All Xen policies including the boot-only default.
XEN_POLICIES_ALL: List[PolicySpec] = [PolicySpec(PolicyName.ROUND_1G)] + XEN_POLICIES

_CACHE: Dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def default_config() -> SimConfig:
    """The configuration every experiment runs with."""
    return SimConfig()


def select_apps(apps: Optional[Sequence[str]] = None) -> List[AppSpec]:
    """Resolve an app-name list (None = all 29)."""
    if apps is None:
        return list(APPLICATIONS)
    return [get_app(name) for name in apps]


# ----------------------------------------------------------------------
# Native Linux runs


def linux_run(
    app: AppSpec,
    policy: str = "first-touch",
    carrefour: bool = False,
    mcs_locks: bool = False,
    config: Optional[SimConfig] = None,
) -> RunResult:
    """One memoised native-Linux run."""
    config = config or default_config()
    key = ("linux", app.name, policy, carrefour, mcs_locks, config)
    if key not in _CACHE:
        env = LinuxEnvironment(
            policy=policy, carrefour=carrefour, mcs_locks=mcs_locks, config=config
        )
        _CACHE[key] = run_app(env, app)
    return _CACHE[key]


def linux_numa_run(app: AppSpec, config: Optional[SimConfig] = None) -> Tuple[RunResult, str]:
    """LinuxNUMA: the best Linux policy for ``app`` (+ MCS where used)."""
    mcs = app.name in MCS_APPS
    best: Optional[RunResult] = None
    best_label = ""
    for policy, carrefour in LINUX_COMBOS:
        result = linux_run(app, policy, carrefour, mcs_locks=mcs, config=config)
        if best is None or result.completion_seconds < best.completion_seconds:
            best = result
            best_label = _linux_label(policy, carrefour)
    assert best is not None
    return best, best_label


def _linux_label(policy: str, carrefour: bool) -> str:
    label = {"first-touch": "First-Touch", "round-4k": "Round-4K"}[policy]
    if carrefour:
        label += " / Carrefour"
    return label


# ----------------------------------------------------------------------
# Xen runs


def xen_run(
    app: AppSpec,
    policy: PolicySpec,
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> RunResult:
    """One memoised single-VM Xen run (48 vCPUs, all threads pinned)."""
    config = config or default_config()
    key = ("xen", app.name, policy, features, config)
    if key not in _CACHE:
        env = XenEnvironment(features=features, config=config)
        _CACHE[key] = run_app(env, VmSpec(app=app, policy=policy))
    return _CACHE[key]


def xen_stock_run(app: AppSpec, config: Optional[SimConfig] = None) -> RunResult:
    """Stock Xen (Figure 1): round-1G, PV I/O, blocking locks."""
    return xen_run(app, PolicySpec(PolicyName.ROUND_1G), features=XEN, config=config)


def xen_plus_run(app: AppSpec, config: Optional[SimConfig] = None) -> RunResult:
    """Xen+ baseline (sections 5.3-5.4): round-1G with the mitigations."""
    return xen_run(
        app, PolicySpec(PolicyName.ROUND_1G), features=XEN_PLUS, config=config
    )


def xen_numa_run(app: AppSpec, config: Optional[SimConfig] = None) -> Tuple[RunResult, str]:
    """Xen+NUMA: the best Xen+ policy for ``app`` (round-1G included)."""
    best: Optional[RunResult] = None
    best_label = ""
    for spec in XEN_POLICIES_ALL:
        result = xen_run(app, spec, features=XEN_PLUS, config=config)
        if best is None or result.completion_seconds < best.completion_seconds:
            best = result
            best_label = spec.label
    assert best is not None
    return best, best_label


def xen_pair_run(
    specs: Sequence[VmSpec],
    features: XenFeatures = XEN_PLUS,
    config: Optional[SimConfig] = None,
) -> List[RunResult]:
    """A multi-VM consolidated run (Figures 8 and 9). Not memoised."""
    config = config or default_config()
    env = XenEnvironment(features=features, config=config)
    return run_apps(env, list(specs))
