"""Figure 7: improvement of each NUMA policy in Xen+, single VM.

One 48-vCPU virtual machine, vCPUs pinned to pCPUs and threads to vCPUs;
each policy's completion time relative to Xen+ (round-1G). The paper's
headline: 9 applications improve by more than 100%, cg.C's completion
time divides by 6; and replacing round-1G by the best other policy never
costs more than 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.results import relative_improvement
from repro.sim.runspec import RunRequest


@dataclass
class Fig7Result:
    """improvements[app][policy_label] relative to Xen+ (round-1G)."""

    improvements: Dict[str, Dict[str, float]]
    best_policy: Dict[str, str]

    def best_improvement(self, app: str) -> float:
        return max([0.0] + list(self.improvements[app].values()))

    def count_best_above(self, threshold: float) -> int:
        return sum(
            1 for app in self.improvements if self.best_improvement(app) > threshold
        )

    def max_degradation_replacing_round1g(self) -> float:
        """Worst loss if round-1G is replaced by the best other policy."""
        worst = 0.0
        for app in self.improvements:
            best_other = self.best_improvement(app)
            if best_other < 0.0:
                worst = max(worst, -best_other)
        return worst


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """The Xen+ policy sweep: round-1G base plus the four alternatives."""
    requests: List[RunRequest] = []
    for name in common.app_names(apps):
        requests.append(common.xen_plus_request(name))
        for spec in common.XEN_POLICIES:
            requests.append(common.xen_request(name, spec))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig7Result:
    """Build Figure 7 from resolved runs."""
    improvements: Dict[str, Dict[str, float]] = {}
    best_policy: Dict[str, str] = {}
    rows: List[List[str]] = []
    labels = [spec.label for spec in common.XEN_POLICIES]
    for name in common.app_names(apps):
        base = results.one(common.xen_plus_request(name))
        per_app: Dict[str, float] = {}
        best_label, best_value = "Round-1G", 0.0
        for spec in common.XEN_POLICIES:
            result = results.one(common.xen_request(name, spec))
            value = relative_improvement(result, base)
            per_app[spec.label] = value
            if value > best_value:
                best_label, best_value = spec.label, value
        improvements[name] = per_app
        best_policy[name] = best_label
        rows.append(
            [name]
            + [format_percent(per_app[l], signed=True) for l in labels]
            + [best_label]
        )
    result = Fig7Result(improvements, best_policy)
    if verbose:
        print(
            format_table(
                ["app"] + labels + ["best"],
                rows,
                title="Figure 7 - NUMA policy improvement vs Xen+ (round-1G)",
            )
        )
        from repro.analysis.figures import render_grouped_bars

        print()
        print(
            render_grouped_bars(
                improvements, title="Figure 7 (bars)", width=24
            )
        )
        print(
            f"\n> best policy improves > 100% for "
            f"{result.count_best_above(1.0)} apps; max degradation when "
            f"replacing round-1G: "
            f"{format_percent(result.max_degradation_replacing_round1g())}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig7Result:
    """Regenerate Figure 7."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig7",
        description="Xen+ NUMA policy sweep vs the round-1G default",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
