"""The scenario registry: every figure/table as a declarative pipeline.

A :class:`Scenario` splits an experiment into the three phases the
unified pipeline needs:

* ``required_runs(apps)`` — the :class:`~repro.sim.runspec.RunRequest`
  list the experiment consumes. Declaring runs (instead of executing
  them inline) is what lets the runner deduplicate *across* scenarios:
  ``run fig2 fig6`` executes Figure 2's sweep once because Figure 6's
  ``required_runs`` literally includes Figure 2's — the reuse the old
  memo dict produced by key collision is now a declared dependency
  (see ``reuses``).
* ``assemble(results, apps, verbose)`` — turn a resolved
  :class:`~repro.runner.ResultSet` into the experiment's result object.
  Two-stage scenarios (Figures 8-9) resolve follow-up requests through
  the same ``ResultSet``.
* ``run(apps, verbose, runner)`` — the classic one-call interface:
  resolve ``required_runs`` through ``runner`` (the process-default
  serial runner when omitted) and assemble.

Modules self-register at import time; :func:`load_all` imports them all,
so the registry is complete after one call and nothing here imports an
experiment module at module level (no cycles).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError

#: Modules that define scenarios, in the paper's presentation order.
SCENARIO_MODULES: Tuple[str, ...] = (
    "fig1",
    "fig2",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "io_micro",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "batching",
    "cluster_migration",
)

#: CLI aliases (the historical short names keep working).
ALIASES: Dict[str, str] = {"io": "io_micro"}


@dataclass(frozen=True)
class Scenario:
    """One figure/table experiment, as the pipeline sees it.

    Attributes:
        name: registry key (``fig1`` ... ``batching``).
        description: one line for ``python -m repro.experiments list``.
        required_runs: ``(apps=None) -> List[RunRequest]``; empty for
            analytic scenarios that consume no engine runs.
        assemble: ``(results, apps=None, verbose=False) -> result``.
        run: ``(apps=None, verbose=True, runner=None) -> result``.
        reuses: names of scenarios whose requests this one includes —
            documentation *and* a checkable claim (the CLI's store
            counters show the hits).
    """

    name: str
    description: str
    required_runs: Callable[..., List]
    assemble: Callable[..., object]
    run: Callable[..., object]
    reuses: Tuple[str, ...] = field(default=())


class _ScenarioRegistry:
    """Holds the process-wide scenario table.

    An instance with its own dict (rather than a bare module-level dict)
    keeps every mutation behind the two methods below, where the
    dataflow lint can see it.
    """

    __slots__ = ("_by_name",)

    def __init__(self) -> None:
        self._by_name: Dict[str, Scenario] = {}

    def add(self, scenario: Scenario) -> None:
        self._by_name[scenario.name] = scenario

    def get(self, name: str) -> Optional["Scenario"]:
        return self._by_name.get(name)


_REGISTRY = _ScenarioRegistry()


def register(scenario: Scenario) -> Scenario:
    """Register ``scenario``, replacing a same-named one (reload-safe)."""
    _REGISTRY.add(scenario)
    return scenario


def load_all() -> None:
    """Import every scenario module so the registry is fully populated."""
    for module in SCENARIO_MODULES:
        importlib.import_module(f"repro.experiments.{module}")


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name or alias.

    Raises:
        ExperimentError: unknown name.
    """
    load_all()
    key = ALIASES.get(name, name)
    scenario = _REGISTRY.get(key)
    if scenario is None:
        known = ", ".join(scenario_names())
        raise ExperimentError(f"unknown scenario {name!r}; known: {known}")
    return scenario


def scenario_names() -> List[str]:
    """Registered names in presentation order (aliases not included)."""
    load_all()
    return [m for m in SCENARIO_MODULES if _REGISTRY.get(m) is not None]


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, in presentation order."""
    return [_REGISTRY.get(name) for name in scenario_names()]
