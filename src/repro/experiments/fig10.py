"""Figure 10: Xen+ and Xen+NUMA relative to LinuxNUMA.

Both sides get their best NUMA policy; the question is how much of the
virtualisation overhead was really NUMA placement. The paper's headline:
with efficient NUMA policies only 4 applications stay degraded above 50%
(vs 14 for Xen+), and the stragglers are the IPI-bound ones (memcached,
cassandra, ua.C) plus psearchy.

This scenario's ``required_runs`` *includes* Figure 7's: the Xen+ policy
sweep is a declared shared dependency, so ``run fig7 fig10`` executes it
once and the second scenario hits the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common, fig7
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.results import relative_overhead
from repro.sim.runspec import RunRequest


@dataclass
class Fig10Result:
    """overheads[app][config] for config in xen+ / xen+numa."""

    overheads: Dict[str, Dict[str, float]]
    xen_policy: Dict[str, str]

    def count_above(self, config: str, threshold: float) -> int:
        return sum(1 for v in self.overheads.values() if v[config] > threshold)


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Figure 7's Xen+ sweep plus the LinuxNUMA sweep."""
    requests: List[RunRequest] = list(fig7.required_runs(apps))
    for name in common.app_names(apps):
        requests.extend(common.linux_numa_requests(name))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig10Result:
    """Build Figure 10 from resolved runs."""
    overheads: Dict[str, Dict[str, float]] = {}
    xen_policy: Dict[str, str] = {}
    rows: List[List[str]] = []
    for name in common.app_names(apps):
        base, base_label = common.best_linux_numa(results.one, name)
        xen_plus = results.one(common.xen_plus_request(name))
        xen_numa, xen_label = common.best_xen_numa(results.one, name)
        per_app = {
            "xen+": relative_overhead(xen_plus, base),
            "xen+numa": relative_overhead(xen_numa, base),
        }
        overheads[name] = per_app
        xen_policy[name] = xen_label
        rows.append(
            [
                name,
                format_percent(per_app["xen+"], signed=True),
                format_percent(per_app["xen+numa"], signed=True),
                xen_label,
                base_label,
            ]
        )
    result = Fig10Result(overheads, xen_policy)
    if verbose:
        print(
            format_table(
                ["app", "Xen+", "Xen+NUMA", "Xen policy", "Linux policy"],
                rows,
                title="Figure 10 - overhead vs LinuxNUMA (lower is better)",
            )
        )
        print(
            f"\n> degraded above 50%: Xen+ {result.count_above('xen+', 0.5)} apps, "
            f"Xen+NUMA {result.count_above('xen+numa', 0.5)} apps"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig10Result:
    """Regenerate Figure 10."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig10",
        description="Best-vs-best: Xen+NUMA against LinuxNUMA",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
        reuses=("fig7",),
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
