"""Figure 10: Xen+ and Xen+NUMA relative to LinuxNUMA.

Both sides get their best NUMA policy; the question is how much of the
virtualisation overhead was really NUMA placement. The paper's headline:
with efficient NUMA policies only 4 applications stay degraded above 50%
(vs 14 for Xen+), and the stragglers are the IPI-bound ones (memcached,
cassandra, ua.C) plus psearchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.sim.results import relative_overhead


@dataclass
class Fig10Result:
    """overheads[app][config] for config in xen+ / xen+numa."""

    overheads: Dict[str, Dict[str, float]]
    xen_policy: Dict[str, str]

    def count_above(self, config: str, threshold: float) -> int:
        return sum(1 for v in self.overheads.values() if v[config] > threshold)


def run(apps: Optional[Sequence[str]] = None, verbose: bool = True) -> Fig10Result:
    """Regenerate Figure 10."""
    overheads: Dict[str, Dict[str, float]] = {}
    xen_policy: Dict[str, str] = {}
    rows: List[List[str]] = []
    for app in common.select_apps(apps):
        base, base_label = common.linux_numa_run(app)
        xen_plus = common.xen_plus_run(app)
        xen_numa, xen_label = common.xen_numa_run(app)
        per_app = {
            "xen+": relative_overhead(xen_plus, base),
            "xen+numa": relative_overhead(xen_numa, base),
        }
        overheads[app.name] = per_app
        xen_policy[app.name] = xen_label
        rows.append(
            [
                app.name,
                format_percent(per_app["xen+"], signed=True),
                format_percent(per_app["xen+numa"], signed=True),
                xen_label,
                base_label,
            ]
        )
    result = Fig10Result(overheads, xen_policy)
    if verbose:
        print(
            format_table(
                ["app", "Xen+", "Xen+NUMA", "Xen policy", "Linux policy"],
                rows,
                title="Figure 10 - overhead vs LinuxNUMA (lower is better)",
            )
        )
        print(
            f"\n> degraded above 50%: Xen+ {result.count_above('xen+', 0.5)} apps, "
            f"Xen+NUMA {result.count_above('xen+numa', 0.5)} apps"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
