"""Figure 2: improvement of the Linux NUMA policies over first-touch.

All four combinations of static and dynamic policies available in Linux —
first-touch, first-touch/Carrefour, round-4K, round-4K/Carrefour — on the
29 applications, relative to the default first-touch (higher is better).
The paper's reading: 17 of 29 applications change by more than 25%
best-vs-worst, 12 by more than 50%, 5 by more than 100%; and each
combination wins for some application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.results import relative_improvement
from repro.sim.runspec import RunRequest

COMBOS = [
    ("first-touch", True, "FT/Carrefour"),
    ("round-4k", False, "Round-4K"),
    ("round-4k", True, "R4K/Carrefour"),
]


@dataclass
class Fig2Result:
    """improvements[app][combo_label] relative to first-touch."""

    improvements: Dict[str, Dict[str, float]]
    best_combo: Dict[str, str]

    def spread(self, app: str) -> float:
        """Best-vs-worst completion-time ratio minus one."""
        values = [0.0] + list(self.improvements[app].values())
        best = max(values)
        worst = min(values)
        # improvement i means T_ft / T = 1 + i; spread = T_worst/T_best - 1.
        return (1.0 + best) / (1.0 + worst) - 1.0

    def count_spread_above(self, threshold: float) -> int:
        return sum(1 for app in self.improvements if self.spread(app) > threshold)


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """The full Linux sweep: first-touch base plus the three variants."""
    requests: List[RunRequest] = []
    for name in common.app_names(apps):
        requests.append(common.linux_request(name, "first-touch"))
        for policy, carrefour, _ in COMBOS:
            requests.append(common.linux_request(name, policy, carrefour))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig2Result:
    """Build Figure 2 from resolved runs."""
    improvements: Dict[str, Dict[str, float]] = {}
    best_combo: Dict[str, str] = {}
    rows: List[List[str]] = []
    for name in common.app_names(apps):
        base = results.one(common.linux_request(name, "first-touch"))
        per_app: Dict[str, float] = {}
        best_label, best_value = "First-Touch", 0.0
        for policy, carrefour, label in COMBOS:
            result = results.one(common.linux_request(name, policy, carrefour))
            value = relative_improvement(result, base)
            per_app[label] = value
            if value > best_value:
                best_label, best_value = label, value
        improvements[name] = per_app
        best_combo[name] = best_label
        rows.append(
            [name]
            + [format_percent(per_app[l], signed=True) for _, __, l in COMBOS]
            + [best_label]
        )
    result = Fig2Result(improvements, best_combo)
    if verbose:
        print(
            format_table(
                ["app"] + [l for _, __, l in COMBOS] + ["best"],
                rows,
                title="Figure 2 - Linux NUMA policy improvement vs first-touch",
            )
        )
        print(
            f"\n> spread > 25%: {result.count_spread_above(0.25)} apps, "
            f"> 50%: {result.count_spread_above(0.5)}, "
            f"> 100%: {result.count_spread_above(1.0)}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig2Result:
    """Regenerate Figure 2."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig2",
        description="Linux NUMA policy sweep vs default first-touch",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
