"""Figure 2: improvement of the Linux NUMA policies over first-touch.

All four combinations of static and dynamic policies available in Linux —
first-touch, first-touch/Carrefour, round-4K, round-4K/Carrefour — on the
29 applications, relative to the default first-touch (higher is better).
The paper's reading: 17 of 29 applications change by more than 25%
best-vs-worst, 12 by more than 50%, 5 by more than 100%; and each
combination wins for some application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.sim.results import relative_improvement

COMBOS = [
    ("first-touch", True, "FT/Carrefour"),
    ("round-4k", False, "Round-4K"),
    ("round-4k", True, "R4K/Carrefour"),
]


@dataclass
class Fig2Result:
    """improvements[app][combo_label] relative to first-touch."""

    improvements: Dict[str, Dict[str, float]]
    best_combo: Dict[str, str]

    def spread(self, app: str) -> float:
        """Best-vs-worst completion-time ratio minus one."""
        values = [0.0] + list(self.improvements[app].values())
        best = max(values)
        worst = min(values)
        # improvement i means T_ft / T = 1 + i; spread = T_worst/T_best - 1.
        return (1.0 + best) / (1.0 + worst) - 1.0

    def count_spread_above(self, threshold: float) -> int:
        return sum(1 for app in self.improvements if self.spread(app) > threshold)


def run(apps: Optional[Sequence[str]] = None, verbose: bool = True) -> Fig2Result:
    """Regenerate Figure 2."""
    improvements: Dict[str, Dict[str, float]] = {}
    best_combo: Dict[str, str] = {}
    rows: List[List[str]] = []
    for app in common.select_apps(apps):
        base = common.linux_run(app, "first-touch")
        per_app: Dict[str, float] = {}
        best_label, best_value = "First-Touch", 0.0
        for policy, carrefour, label in COMBOS:
            result = common.linux_run(app, policy, carrefour)
            value = relative_improvement(result, base)
            per_app[label] = value
            if value > best_value:
                best_label, best_value = label, value
        improvements[app.name] = per_app
        best_combo[app.name] = best_label
        rows.append(
            [app.name]
            + [format_percent(per_app[l], signed=True) for _, __, l in COMBOS]
            + [best_label]
        )
    result = Fig2Result(improvements, best_combo)
    if verbose:
        print(
            format_table(
                ["app"] + [l for _, __, l in COMBOS] + ["best"],
                rows,
                title="Figure 2 - Linux NUMA policy improvement vs first-touch",
            )
        )
        print(
            f"\n> spread > 25%: {result.count_spread_above(0.25)} apps, "
            f"> 50%: {result.count_spread_above(0.5)}, "
            f"> 100%: {result.count_spread_above(1.0)}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
