"""Figure 9: two consolidated VMs, 48 vCPUs each, sharing every pCPU.

Both virtual machines span all 48 cores; every physical CPU runs exactly
two vCPUs (one per VM) and Xen's credit scheduler shares it fairly. As in
Figure 8, the improvement of the best per-application Xen NUMA policy
over the round-1G default is reported per VM. MCS locks stay off: the
paper's spin-loop trick only works for non-consolidated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_percent, format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.experiments import common
from repro.experiments.fig8 import best_policy_spec
from repro.sim.environment import VmSpec
from repro.workloads.suite import get_app

#: Six consolidated pairs (labels in the paper's figure are garbled; the
#: pairs cover all imbalance classes).
DEFAULT_PAIRS: List[Tuple[str, str]] = [
    ("cg.C", "sp.C"),
    ("facesim", "streamcluster"),
    ("kmeans", "pca"),
    ("bt.C", "lu.C"),
    ("ep.D", "ua.C"),
    ("bodytrack", "swaptions"),
]


@dataclass
class PairResult:
    apps: Tuple[str, str]
    improvements: Tuple[float, float]
    policies: Tuple[str, str]


@dataclass
class Fig9Result:
    pairs: List[PairResult]

    def count_vm_improved_above(self, threshold: float) -> int:
        return sum(1 for p in self.pairs if max(p.improvements) > threshold)

    def max_degradation(self) -> float:
        return max(0.0, -min(min(p.improvements) for p in self.pairs))


def _consolidated_completions(
    names: Tuple[str, str], policies: Tuple[PolicySpec, PolicySpec]
) -> Tuple[float, float]:
    all_nodes = list(range(8))
    pin = list(range(48))
    specs = [
        VmSpec(
            app=get_app(name),
            policy=policies[i],
            num_vcpus=48,
            home_nodes=all_nodes,
            pin_pcpus=pin,
        )
        for i, name in enumerate(names)
    ]
    results = common.xen_pair_run(specs)
    return results[0].completion_seconds, results[1].completion_seconds


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> Fig9Result:
    """Regenerate Figure 9 (``apps`` ignored; pass ``pairs`` to restrict)."""
    pairs = pairs or DEFAULT_PAIRS
    out: List[PairResult] = []
    rows: List[List[str]] = []
    round1g = PolicySpec(PolicyName.ROUND_1G)
    for pair in pairs:
        base = _consolidated_completions(pair, (round1g, round1g))
        best_specs = (best_policy_spec(pair[0]), best_policy_spec(pair[1]))
        best = _consolidated_completions(pair, best_specs)
        improvements = (base[0] / best[0] - 1.0, base[1] / best[1] - 1.0)
        out.append(
            PairResult(
                apps=pair,
                improvements=improvements,
                policies=(best_specs[0].label, best_specs[1].label),
            )
        )
        for i in (0, 1):
            rows.append(
                [
                    f"{pair[0]} + {pair[1]}",
                    pair[i],
                    out[-1].policies[i],
                    format_percent(improvements[i], signed=True),
                ]
            )
    result = Fig9Result(out)
    if verbose:
        print(
            format_table(
                ["pair", "vm", "policy", "improvement"],
                rows,
                title="Figure 9 - 2 consolidated VMs (48 vCPUs each) vs Xen+",
            )
        )
        print(
            f"\n> pairs with a VM improved > 50%: "
            f"{result.count_vm_improved_above(0.5)}/{len(result.pairs)}; "
            f"max degradation {format_percent(result.max_degradation())}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
