"""Figure 9: two consolidated VMs, 48 vCPUs each, sharing every pCPU.

Both virtual machines span all 48 cores; every physical CPU runs exactly
two vCPUs (one per VM) and Xen's credit scheduler shares it fairly. As in
Figure 8, the improvement of the best per-application Xen NUMA policy
over the round-1G default is reported per VM. MCS locks stay off: the
paper's spin-loop trick only works for non-consolidated workloads.

Like Figure 8 this is two-stage (sweeps pick the policies, pair runs
follow), and the per-application sweeps it declares overlap Figure 8's —
shared requests the store serves from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_percent, format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.experiments import common
from repro.experiments.fig8 import best_policy_spec, pair_apps, resolved_best_spec
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest, VmRequest

__all__ = ["DEFAULT_PAIRS", "Fig9Result", "PairResult", "run", "best_policy_spec"]

#: Six consolidated pairs (labels in the paper's figure are garbled; the
#: pairs cover all imbalance classes).
DEFAULT_PAIRS: List[Tuple[str, str]] = [
    ("cg.C", "sp.C"),
    ("facesim", "streamcluster"),
    ("kmeans", "pca"),
    ("bt.C", "lu.C"),
    ("ep.D", "ua.C"),
    ("bodytrack", "swaptions"),
]


@dataclass
class PairResult:
    apps: Tuple[str, str]
    improvements: Tuple[float, float]
    policies: Tuple[str, str]


@dataclass
class Fig9Result:
    pairs: List[PairResult]

    def count_vm_improved_above(self, threshold: float) -> int:
        return sum(1 for p in self.pairs if max(p.improvements) > threshold)

    def max_degradation(self) -> float:
        return max(0.0, -min(min(p.improvements) for p in self.pairs))


def consolidated_request(
    names: Tuple[str, str], policies: Tuple[PolicySpec, PolicySpec]
) -> RunRequest:
    """One consolidated two-VM run: both VMs span all nodes and pCPUs."""
    all_nodes = list(range(8))
    pin = list(range(48))
    vms = [
        VmRequest(
            app=name,
            policy=policies[i].base.value,
            carrefour=policies[i].carrefour,
            num_vcpus=48,
            home_nodes=all_nodes,
            pin_pcpus=pin,
        )
        for i, name in enumerate(names)
    ]
    return common.pair_request(vms)


def required_runs(
    apps: Optional[Sequence[str]] = None,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> List[RunRequest]:
    """Policy sweeps for every paired app plus the round-1G baselines."""
    pairs = pairs or DEFAULT_PAIRS
    requests: List[RunRequest] = []
    for name in pair_apps(pairs):
        requests.extend(common.xen_numa_requests(name))
    round1g = PolicySpec(PolicyName.ROUND_1G)
    for pair in pairs:
        requests.append(consolidated_request(pair, (round1g, round1g)))
    return requests


def _consolidated_completions(
    results: ResultSet,
    names: Tuple[str, str],
    policies: Tuple[PolicySpec, PolicySpec],
) -> Tuple[float, float]:
    run_results = results.get(consolidated_request(names, policies))
    return run_results[0].completion_seconds, run_results[1].completion_seconds


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
    pairs: Optional[List[Tuple[str, str]]] = None,
) -> Fig9Result:
    """Build Figure 9 from resolved runs (``apps`` ignored)."""
    pairs = pairs or DEFAULT_PAIRS
    round1g = PolicySpec(PolicyName.ROUND_1G)
    best = {name: resolved_best_spec(results, name) for name in pair_apps(pairs)}
    results.resolve(
        [
            consolidated_request(pair, (best[pair[0]], best[pair[1]]))
            for pair in pairs
        ]
    )
    out: List[PairResult] = []
    rows: List[List[str]] = []
    for pair in pairs:
        base = _consolidated_completions(results, pair, (round1g, round1g))
        best_specs = (best[pair[0]], best[pair[1]])
        best_times = _consolidated_completions(results, pair, best_specs)
        improvements = (
            base[0] / best_times[0] - 1.0,
            base[1] / best_times[1] - 1.0,
        )
        out.append(
            PairResult(
                apps=pair,
                improvements=improvements,
                policies=(best_specs[0].label, best_specs[1].label),
            )
        )
        for i in (0, 1):
            rows.append(
                [
                    f"{pair[0]} + {pair[1]}",
                    pair[i],
                    out[-1].policies[i],
                    format_percent(improvements[i], signed=True),
                ]
            )
    result = Fig9Result(out)
    if verbose:
        print(
            format_table(
                ["pair", "vm", "policy", "improvement"],
                rows,
                title="Figure 9 - 2 consolidated VMs (48 vCPUs each) vs Xen+",
            )
        )
        print(
            f"\n> pairs with a VM improved > 50%: "
            f"{result.count_vm_improved_above(0.5)}/{len(result.pairs)}; "
            f"max degradation {format_percent(result.max_degradation())}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    pairs: Optional[List[Tuple[str, str]]] = None,
    runner: Optional[Runner] = None,
) -> Fig9Result:
    """Regenerate Figure 9 (``apps`` ignored; pass ``pairs`` to restrict)."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps, pairs=pairs))
    return assemble(results, apps=apps, verbose=verbose, pairs=pairs)


SCENARIO = register(
    Scenario(
        name="fig9",
        description="Two consolidated 48-vCPU VMs: best policy vs round-1G",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
        reuses=("fig8",),
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
