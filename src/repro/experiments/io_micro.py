"""Section 2.2 microbenchmark: 4 KiB block reads through the three paths.

Reading one 4 KiB block (O_DIRECT) takes 74 us on native Linux, 307 us
through the para-virtualised driver, 186 us through PCI passthrough; and
larger reads amortise the virtualisation overhead. The experiment drives
the real driver objects (paravirt through dom0, passthrough through the
IOMMU DMA engine), not just the timing formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.config import SimConfig
from repro.experiments.registry import Scenario, register
from repro.hardware.presets import amd48
from repro.hypervisor.xen import Hypervisor, XEN_PLUS
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest
from repro.vio.disk import DiskModel, IoMode, MEASURED_4K_SECONDS
from repro.vio.dma import DmaEngine
from repro.vio.drivers import ParavirtDriver, PassthroughDriver


@dataclass
class IoMicroResult:
    """Per-mode 4 KiB latency and large-read overhead."""

    block_4k_seconds: Dict[IoMode, float]
    overhead_vs_native: Dict[IoMode, Dict[int, float]]

    def matches_paper(self, tolerance: float = 0.02) -> bool:
        return all(
            abs(self.block_4k_seconds[mode] - expected) / expected <= tolerance
            for mode, expected in MEASURED_4K_SECONDS.items()
        )


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """The I/O microbenchmark drives driver objects, not engine runs."""
    return []


def assemble(
    results: Optional[ResultSet] = None,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> IoMicroResult:
    """Build the I/O microbenchmark result (``results`` unused)."""
    config = SimConfig()
    machine = amd48(config=config)
    hypervisor = Hypervisor(machine, features=XEN_PLUS)
    domain = hypervisor.create_domain(
        "iobench", num_vcpus=1, memory_pages=64, home_nodes=[0]
    )
    disk = DiskModel()
    paravirt = ParavirtDriver(disk, hypervisor.dom0)
    passthrough = PassthroughDriver(disk, DmaEngine(machine.iommu), config)

    block_4k = {
        IoMode.NATIVE: disk.block_read_seconds(4096, IoMode.NATIVE),
        IoMode.PARAVIRT: paravirt.read(domain, 4096, block_bytes=4096).seconds,
        IoMode.PASSTHROUGH: passthrough.read(domain, 4096, block_bytes=4096).seconds,
    }
    sizes = [4096, 64 * 1024, 1 << 20]
    overhead: Dict[IoMode, Dict[int, float]] = {
        IoMode.PARAVIRT: {},
        IoMode.PASSTHROUGH: {},
    }
    for size in sizes:
        native = disk.read_seconds(size, size, IoMode.NATIVE)
        for mode in (IoMode.PARAVIRT, IoMode.PASSTHROUGH):
            virt = disk.read_seconds(size, size, mode)
            overhead[mode][size] = virt / native - 1.0
    result = IoMicroResult(block_4k_seconds=block_4k, overhead_vs_native=overhead)
    if verbose:
        rows = [
            [
                str(mode),
                f"{block_4k[mode] * 1e6:.0f} us",
                f"{MEASURED_4K_SECONDS[mode] * 1e6:.0f} us",
            ]
            for mode in (IoMode.NATIVE, IoMode.PARAVIRT, IoMode.PASSTHROUGH)
        ]
        print(
            format_table(
                ["path", "4 KiB read", "paper"],
                rows,
                title="Section 2.2 - block read microbenchmark",
            )
        )
        rows = [
            [f"{size >> 10} KiB"]
            + [
                f"{overhead[mode][size] * 100:+.0f}%"
                for mode in (IoMode.PARAVIRT, IoMode.PASSTHROUGH)
            ]
            for size in sizes
        ]
        print()
        print(
            format_table(
                ["read size", "paravirt overhead", "passthrough overhead"],
                rows,
                title="Virtualisation overhead amortised by larger reads",
            )
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> IoMicroResult:
    """Regenerate the I/O microbenchmark (``apps`` ignored)."""
    return assemble(None, apps=None, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="io_micro",
        description="Block-read latency through the three I/O paths",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
