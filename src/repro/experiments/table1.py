"""Table 1: effect of the static NUMA policies in Linux.

For each application: the load imbalance (relative standard deviation of
per-node access counts) and the interconnect load (average utilisation of
the most loaded link) under first-touch and round-4K in native Linux, plus
the resulting low/moderate/high classification. The table cannot be
measured while Carrefour runs (it monopolises the hardware counters) — our
counters model enforces the same exclusivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.metrics import classify_imbalance
from repro.analysis.tables import format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.runspec import RunRequest
from repro.workloads.suite import get_app


@dataclass
class Table1Row:
    """Measured metrics for one application."""

    app: str
    ft_imbalance: float
    r4k_imbalance: float
    ft_interconnect: float
    r4k_interconnect: float
    measured_class: str
    paper_class: str


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def class_matches(self) -> int:
        return sum(1 for r in self.rows if r.measured_class == r.paper_class)


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """First-touch and round-4K native runs, per application."""
    requests: List[RunRequest] = []
    for name in common.app_names(apps):
        requests.append(common.linux_request(name, "first-touch"))
        requests.append(common.linux_request(name, "round-4k"))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Table1Result:
    """Build Table 1 from resolved runs."""
    rows: List[Table1Row] = []
    printable: List[List[str]] = []
    for name in common.app_names(apps):
        app = get_app(name)
        ft = results.one(common.linux_request(name, "first-touch"))
        r4k = results.one(common.linux_request(name, "round-4k"))
        row = Table1Row(
            app=name,
            ft_imbalance=ft.mean_imbalance,
            r4k_imbalance=r4k.mean_imbalance,
            ft_interconnect=ft.mean_max_link_rho,
            r4k_interconnect=r4k.mean_max_link_rho,
            measured_class=classify_imbalance(ft.mean_imbalance),
            paper_class=app.imbalance_class,
        )
        rows.append(row)
        printable.append(
            [
                name,
                f"{row.ft_imbalance * 100:.0f}%",
                f"{row.r4k_imbalance * 100:.0f}%",
                f"{row.ft_interconnect * 100:.0f}%",
                f"{row.r4k_interconnect * 100:.0f}%",
                row.measured_class,
                row.paper_class,
            ]
        )
    result = Table1Result(rows)
    if verbose:
        print(
            format_table(
                [
                    "app",
                    "imb(FT)",
                    "imb(R4K)",
                    "link(FT)",
                    "link(R4K)",
                    "class",
                    "paper",
                ],
                printable,
                title="Table 1 - static NUMA policies in Linux (measured)",
            )
        )
        print(
            f"\n> imbalance class matches the paper for "
            f"{result.class_matches()}/{len(result.rows)} applications"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Table1Result:
    """Regenerate Table 1 from simulation measurements."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="table1",
        description="Imbalance and interconnect load of the static policies",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
