"""Figure 1: relative overhead of Xen compared to Linux (lower is better).

Stock Xen (round-1G placement, para-virtualised I/O, virtualised IPIs)
against native Linux with its default first-touch policy, for all 29
applications. The paper's headline numbers: overhead up to 700%, above
50% for 15 applications, above 100% for 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.sim.results import relative_overhead


@dataclass
class Fig1Result:
    """Per-application overhead of Xen vs Linux."""

    overheads: Dict[str, float]

    def count_above(self, threshold: float) -> int:
        return sum(1 for v in self.overheads.values() if v > threshold)

    @property
    def max_overhead(self) -> float:
        return max(self.overheads.values())


def run(apps: Optional[Sequence[str]] = None, verbose: bool = True) -> Fig1Result:
    """Regenerate Figure 1."""
    overheads: Dict[str, float] = {}
    rows: List[List[str]] = []
    for app in common.select_apps(apps):
        linux = common.linux_run(app, "first-touch")
        xen = common.xen_stock_run(app)
        overhead = relative_overhead(xen, linux)
        overheads[app.name] = overhead
        rows.append(
            [
                app.name,
                f"{linux.completion_seconds:.1f}s",
                f"{xen.completion_seconds:.1f}s",
                format_percent(overhead, signed=True),
            ]
        )
    result = Fig1Result(overheads)
    if verbose:
        print(
            format_table(
                ["app", "Linux", "Xen", "overhead"],
                rows,
                title="Figure 1 - relative overhead of Xen vs Linux",
            )
        )
        from repro.analysis.figures import render_bars

        print()
        print(render_bars(overheads, title="Figure 1 (bars)"))
        print(
            f"\n> {result.count_above(0.5)} apps above 50% overhead, "
            f"{result.count_above(1.0)} above 100%, "
            f"max {format_percent(result.max_overhead)}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run()
