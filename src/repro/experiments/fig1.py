"""Figure 1: relative overhead of Xen compared to Linux (lower is better).

Stock Xen (round-1G placement, para-virtualised I/O, virtualised IPIs)
against native Linux with its default first-touch policy, for all 29
applications. The paper's headline numbers: overhead up to 700%, above
50% for 15 applications, above 100% for 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percent, format_table
from repro.experiments import common
from repro.experiments.registry import Scenario, register
from repro.runner import ResultSet, Runner
from repro.sim.results import relative_overhead
from repro.sim.runspec import RunRequest


@dataclass
class Fig1Result:
    """Per-application overhead of Xen vs Linux."""

    overheads: Dict[str, float]

    def count_above(self, threshold: float) -> int:
        return sum(1 for v in self.overheads.values() if v > threshold)

    @property
    def max_overhead(self) -> float:
        return max(self.overheads.values())


def required_runs(apps: Optional[Sequence[str]] = None) -> List[RunRequest]:
    """Linux first-touch and stock Xen, per application."""
    requests: List[RunRequest] = []
    for name in common.app_names(apps):
        requests.append(common.linux_request(name, "first-touch"))
        requests.append(common.xen_stock_request(name))
    return requests


def assemble(
    results: ResultSet,
    apps: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Fig1Result:
    """Build Figure 1 from resolved runs."""
    overheads: Dict[str, float] = {}
    rows: List[List[str]] = []
    for name in common.app_names(apps):
        linux = results.one(common.linux_request(name, "first-touch"))
        xen = results.one(common.xen_stock_request(name))
        overhead = relative_overhead(xen, linux)
        overheads[name] = overhead
        rows.append(
            [
                name,
                f"{linux.completion_seconds:.1f}s",
                f"{xen.completion_seconds:.1f}s",
                format_percent(overhead, signed=True),
            ]
        )
    result = Fig1Result(overheads)
    if verbose:
        print(
            format_table(
                ["app", "Linux", "Xen", "overhead"],
                rows,
                title="Figure 1 - relative overhead of Xen vs Linux",
            )
        )
        from repro.analysis.figures import render_bars

        print()
        print(render_bars(overheads, title="Figure 1 (bars)"))
        print(
            f"\n> {result.count_above(0.5)} apps above 50% overhead, "
            f"{result.count_above(1.0)} above 100%, "
            f"max {format_percent(result.max_overhead)}"
        )
    return result


def run(
    apps: Optional[Sequence[str]] = None,
    verbose: bool = True,
    runner: Optional[Runner] = None,
) -> Fig1Result:
    """Regenerate Figure 1."""
    runner = runner or common.default_runner()
    results = runner.resolve(required_runs(apps))
    return assemble(results, apps=apps, verbose=verbose)


SCENARIO = register(
    Scenario(
        name="fig1",
        description="Overhead of stock Xen vs native Linux, 29 applications",
        required_runs=required_runs,
        assemble=assemble,
        run=run,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run()
