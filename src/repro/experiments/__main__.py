"""Command-line entry point for the experiment pipeline.

Two forms::

    python -m repro.experiments run fig2 fig6 --jobs 8 --store .runstore
    python -m repro.experiments <name> [app ...]     # legacy direct form

plus ``list`` (describe every scenario) and ``report`` (regenerate
EXPERIMENTS.md). The ``run`` form resolves the scenarios' declared
requests through one shared store — duplicates across scenarios execute
once — and prints the store/runner counters at the end, so a second
invocation against an on-disk ``--store`` shows the hits.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.config import SimConfig
from repro.errors import ReproError
from repro.experiments import (
    batching,
    cluster_migration,
    common,
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    io_micro,
    registry,
    table1,
    table2,
    table3,
    table4,
)
from repro.runner import Runner
from repro.runstore import open_store

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig5": fig5.run,
    "io": io_micro.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "batching": batching.run,
    "cluster_migration": cluster_migration.run,
}

USAGE = """\
usage: python -m repro.experiments <command>

commands:
  list                         describe every scenario (runs, reuse)
  run <name ...|all> [options] resolve scenarios through one shared store
                               options: --jobs N  --batch-worlds K
                                        --store DIR  --apps a,b
                                        --page-scale N  --quiet
  submit <name ...|all> [opts] resolve scenarios through a running
                               `python -m repro.serve` server
                               options: --ready-file PATH | --host H --port P
                                        --apps a,b  --page-scale N  --quiet
                                        --metrics PATH  --shutdown
  report [output.md]           regenerate the EXPERIMENTS.md report
  <name> [app ...]             legacy form: one experiment, default store

scenario names: {names}
"""


def _usage() -> str:
    return USAGE.format(names=", ".join(EXPERIMENTS))


def _list_command() -> int:
    registry.load_all()
    for scenario in registry.all_scenarios():
        runs = len(scenario.required_runs())
        reuse = f" (includes {', '.join(scenario.reuses)})" if scenario.reuses else ""
        print(f"{scenario.name:10s} {runs:4d} runs{reuse:24s} {scenario.description}")
    return 0


def _run_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments run",
        description="Resolve one or more scenarios through a shared run store.",
    )
    parser.add_argument("names", nargs="+", help="scenario names, or 'all'")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cache misses (default: serial)",
    )
    parser.add_argument(
        "--batch-worlds", type=int, default=1, metavar="K",
        help="execute up to K compatible cache misses as one batched "
        "multi-run group (results are byte-identical to serial)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="on-disk run store directory ('memory' or omitted: in-memory)",
    )
    parser.add_argument(
        "--apps", default=None, metavar="A,B,...",
        help="comma-separated application subset",
    )
    parser.add_argument(
        "--page-scale", type=int, default=None, metavar="N",
        help="override SimConfig.page_scale (larger = coarser and faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a deterministic trace + metrics file (forces --jobs 1)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    apps: Optional[List[str]] = args.apps.split(",") if args.apps else None
    names = registry.scenario_names() if args.names == ["all"] else args.names
    jobs = args.jobs
    if args.trace is not None and jobs > 1:
        # Worker processes run with their own (null) observability
        # sessions, so a parallel trace would be missing the run bodies.
        print("note: --trace forces --jobs 1")
        jobs = 1
    obs_session = None
    with ExitStack() as stack:
        if args.trace is not None:
            obs_session = stack.enter_context(obs.session())
        runner = Runner(
            store=open_store(args.store),
            jobs=jobs,
            batch_worlds=args.batch_worlds,
        )
        if args.page_scale is not None:
            stack.enter_context(common.configured(SimConfig(page_scale=args.page_scale)))
        for name in names:
            scenario = registry.get_scenario(name)
            if not args.quiet:
                print(f"\n######## {scenario.name} ########\n")
            scenario.run(apps=apps, verbose=not args.quiet, runner=runner)
    if obs_session is not None:
        obs_session.write_trace(args.trace)
        print(f"trace written to {args.trace}")
    print(runner.summary())
    return 0


def _submit_command(argv: List[str]) -> int:
    # Imported here: the serve client pulls in asyncio/socket machinery
    # that plain `run` invocations never need.
    from repro.obs.trace import write_trace
    from repro.serve.client import ClientRunner, ServeClient

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments submit",
        description="Resolve scenarios through a running repro serve server.",
    )
    parser.add_argument("names", nargs="+", help="scenario names, or 'all'")
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="server address file written by `python -m repro.serve --ready-file`",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=None, help="server port")
    parser.add_argument(
        "--apps", default=None, metavar="A,B,...",
        help="comma-separated application subset",
    )
    parser.add_argument(
        "--page-scale", type=int, default=None, metavar="N",
        help="override SimConfig.page_scale (must match the server's "
        "config for stored keys to hit)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the server's live obs snapshot (trace-payload JSON)",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to drain and stop after this submission",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    apps: Optional[List[str]] = args.apps.split(",") if args.apps else None
    names = registry.scenario_names() if args.names == ["all"] else args.names
    if args.ready_file is None and args.port is None:
        print("error: submit needs --ready-file or --host/--port", file=sys.stderr)
        return 1
    if args.ready_file is not None:
        client = ServeClient.from_ready_file(args.ready_file)
    else:
        client = ServeClient(args.host, args.port)
    with ExitStack() as stack:
        stack.callback(client.close)
        runner = ClientRunner(client)
        if args.page_scale is not None:
            stack.enter_context(common.configured(SimConfig(page_scale=args.page_scale)))
        for name in names:
            scenario = registry.get_scenario(name)
            if not args.quiet:
                print(f"\n######## {scenario.name} ########\n")
            scenario.run(apps=apps, verbose=not args.quiet, runner=runner)
        if args.metrics is not None:
            write_trace(args.metrics, client.metrics())
            print(f"metrics written to {args.metrics}")
        if args.shutdown:
            client.shutdown()
    print(runner.summary())
    return 0


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    command = argv[0]
    try:
        if command == "list":
            return _list_command()
        if command == "run":
            return _run_command(argv[1:])
        if command == "submit":
            return _submit_command(argv[1:])
        if command == "report":
            from repro.experiments import report

            return report.main(argv[1:])
        # Legacy form: one experiment through the process-default store.
        apps = argv[1:] or None
        if command == "all":
            for key, runner in EXPERIMENTS.items():
                print(f"\n######## {key} ########\n")
                runner(apps=apps)
            return 0
        runner = EXPERIMENTS.get(command)
        if runner is None:
            print(f"unknown experiment {command!r}; known: {', '.join(EXPERIMENTS)}")
            return 1
        runner(apps=apps)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
