"""Command-line entry point: ``python -m repro.experiments <name> [apps...]``."""

from __future__ import annotations

import sys
from typing import Callable, Dict

from repro.experiments import (
    batching,
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    io_micro,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig5": fig5.run,
    "io": io_micro.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "batching": batching.run,
}


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(EXPERIMENTS)
        print(f"usage: python -m repro.experiments <{names}|all> [app ...]")
        return 0
    name = argv[0]
    apps = argv[1:] or None
    if name == "all":
        for key, runner in EXPERIMENTS.items():
            print(f"\n######## {key} ########\n")
            runner(apps=apps)
        return 0
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}")
        return 1
    runner(apps=apps)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
